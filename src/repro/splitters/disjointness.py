"""Deciding splitter disjointness (Proposition 5.5).

A splitter is *disjoint* when the spans it extracts from any document
are pairwise disjoint (tokenizers, sentence/paragraph splitters);
N-gram splitters for ``N > 1`` are the canonical non-disjoint example.

The procedure follows the proof: simulate two runs of the splitter on
the same document and search for a pair of *distinct, overlapping*
output spans.  The overlap test is exact: a small monitor tracks, for
the four boundary events (open/close of either run), whether any
document letter was read between them, which determines the order of
the span endpoints; the paper's formula ``i <= i' < j or i' <= i < j'``
is then evaluated at acceptance.  The whole search is reachability
over the product of two copies of the splitter with the monitor — the
NL procedure of the proposition.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Optional, Tuple

from repro.automata.nfa import EPSILON
from repro.core.composition import splitter_variable
from repro.spanners.refwords import VarOp
from repro.spanners.vset_automaton import VSetAutomaton

# Events: run 1 opens/closes, run 2 opens/closes.
_O1, _C1, _O2, _C2 = "o1", "c1", "o2", "c2"

# Comparisons needed to evaluate equality and overlap of the two spans
# [i1, j1> and [i2, j2>: each maps to a pair of boundary events.
_NEEDED = {
    ("i1", "i2"): (_O1, _O2),
    ("j1", "j2"): (_C1, _C2),
    ("i1", "j2"): (_O1, _C2),
    ("i2", "j1"): (_O2, _C1),
}


class _Monitor:
    """Immutable monitor state: run phases plus endpoint comparisons.

    ``phases`` are 0 (not opened), 1 (open), 2 (closed) per run.
    ``fresh`` is the set of events fired since the last letter was
    read; firing an event ``e`` resolves its comparison against every
    already-fired event ``f`` as ``=`` when ``f`` is fresh and ``<``
    (``f`` strictly earlier) otherwise.
    """

    __slots__ = ("phase1", "phase2", "fresh", "cmp")

    def __init__(self, phase1: int, phase2: int,
                 fresh: FrozenSet[str], cmp: Tuple) -> None:
        self.phase1 = phase1
        self.phase2 = phase2
        self.fresh = fresh
        self.cmp = cmp

    def key(self) -> Tuple:
        return (self.phase1, self.phase2, self.fresh, self.cmp)

    def read_letter(self) -> "_Monitor":
        return _Monitor(self.phase1, self.phase2, frozenset(), self.cmp)

    def fire(self, event: str) -> "_Monitor":
        fired = {_O1: self.phase1 >= 1, _C1: self.phase1 >= 2,
                 _O2: self.phase2 >= 1, _C2: self.phase2 >= 2}
        cmp_map: Dict[Tuple[str, str], str] = dict(self.cmp)
        for pair, (first, second) in _NEEDED.items():
            if second == event and fired[first]:
                cmp_map[pair] = "=" if first in self.fresh else "<"
            elif first == event and fired[second]:
                cmp_map[pair] = "=" if second in self.fresh else ">"
        phase1, phase2 = self.phase1, self.phase2
        if event == _O1:
            phase1 = 1
        elif event == _C1:
            phase1 = 2
        elif event == _O2:
            phase2 = 1
        elif event == _C2:
            phase2 = 2
        return _Monitor(phase1, phase2, self.fresh | {event},
                        tuple(sorted(cmp_map.items())))

    def verdict(self) -> Optional[bool]:
        """Once both spans are closed: do they overlap while distinct?"""
        if self.phase1 != 2 or self.phase2 != 2:
            return None
        cmp_map = dict(self.cmp)
        equal = cmp_map[("i1", "i2")] == "=" and cmp_map[("j1", "j2")] == "="
        # i1 <= i2 < j1  or  i2 <= i1 < j2  (paper's overlap formula).
        first = cmp_map[("i1", "i2")] in ("<", "=") and \
            cmp_map[("i2", "j1")] == "<"
        second = cmp_map[("i1", "i2")] in (">", "=") and \
            cmp_map[("i1", "j2")] == "<"
        return (first or second) and not equal


def is_disjoint(splitter: VSetAutomaton) -> bool:
    """Proposition 5.5: decide whether a splitter is disjoint."""
    return overlap_witness(splitter) is None


def overlap_witness_exists(splitter: VSetAutomaton) -> bool:
    """Whether some document yields two distinct overlapping spans."""
    return overlap_witness(splitter) is not None


def overlap_witness(splitter: VSetAutomaton):
    """A shortest document with two distinct overlapping spans.

    Returns ``None`` for disjoint splitters, otherwise a document (as
    a string when all symbols are single characters, else a tuple);
    the planner surfaces it in debugging reports.
    """
    x = splitter_variable(splitter)
    open_x, close_x = VarOp(x, False), VarOp(x, True)
    nfa = splitter.nfa
    start_monitor = _Monitor(0, 0, frozenset(), ())
    start = (nfa.initial, nfa.initial, start_monitor.key())
    seen = {start}
    queue = deque([(nfa.initial, nfa.initial, start_monitor, ())])
    while queue:
        q1, q2, monitor, word = queue.popleft()
        if (
            q1 in nfa.finals
            and q2 in nfa.finals
            and monitor.verdict() is True
        ):
            try:
                return "".join(word)
            except TypeError:
                return word
        moves = []
        for q1b in nfa.successors(q1, EPSILON):
            moves.append((q1b, q2, monitor, word))
        for q2b in nfa.successors(q2, EPSILON):
            moves.append((q1, q2b, monitor, word))
        if monitor.phase1 == 0:
            for q1b in nfa.successors(q1, open_x):
                moves.append((q1b, q2, monitor.fire(_O1), word))
        if monitor.phase1 == 1:
            for q1b in nfa.successors(q1, close_x):
                moves.append((q1b, q2, monitor.fire(_C1), word))
        if monitor.phase2 == 0:
            for q2b in nfa.successors(q2, open_x):
                moves.append((q1, q2b, monitor.fire(_O2), word))
        if monitor.phase2 == 1:
            for q2b in nfa.successors(q2, close_x):
                moves.append((q1, q2b, monitor.fire(_C2), word))
        for symbol in splitter.doc_alphabet:
            for q1b in nfa.successors(q1, symbol):
                for q2b in nfa.successors(q2, symbol):
                    moves.append((q1b, q2b, monitor.read_letter(),
                                  word + (symbol,)))
        for q1b, q2b, monitor_b, word_b in moves:
            config = (q1b, q2b, monitor_b.key())
            if config not in seen:
                seen.add(config)
                queue.append((q1b, q2b, monitor_b, word_b))
    return None
