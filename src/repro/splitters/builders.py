"""A library of the splitters the paper's Introduction catalogues.

Tokenizers, sentence and paragraph splitters, N-gram extractors,
fixed-width windows, and machine-log record splitters, all constructed
as VSet-automata (via regex-formula ASTs built programmatically) so
that every decision procedure of the framework applies to them.

Text conventions for the synthetic corpora (see DESIGN.md):

* tokens are maximal runs of non-space characters, separated by single
  spaces;
* a sentence is a non-empty run of non-period characters starting with
  a non-space and terminated by ``.``; sentences are joined by a
  single space;
* paragraphs are separated by the newline character;
* log records are separated by ``#`` (standing in for the blank line
  of an HTTP log).
"""

from __future__ import annotations

import re as _re
from functools import reduce
from typing import Callable, Dict, Hashable, Iterable

from repro.errors import UnknownSplitterError

from repro.automata.regex import (
    Concat,
    Epsilon,
    Literal,
    RegexNode,
    Star,
    Union_,
)
from repro.spanners.regex_formulas import Capture, compile_regex_formula
from repro.spanners.vset_automaton import VSetAutomaton

Symbol = Hashable

#: Default variable name used by the built splitters.
SPLIT_VAR = "x"


# ----------------------------------------------------------------------
# AST-building helpers
# ----------------------------------------------------------------------

def char_class(chars: Iterable[str]) -> RegexNode:
    """Alternation over a set of characters."""
    nodes = [Literal(c) for c in sorted(set(chars))]
    if not nodes:
        raise ValueError("empty character class")
    return reduce(Union_, nodes)


def seq(*nodes: RegexNode) -> RegexNode:
    """Concatenation of several nodes."""
    if not nodes:
        return Epsilon()
    return reduce(Concat, nodes)


def power(node: RegexNode, count: int) -> RegexNode:
    """``node`` repeated exactly ``count`` times."""
    if count < 0:
        raise ValueError("count must be non-negative")
    if count == 0:
        return Epsilon()
    return seq(*([node] * count))


def plus(node: RegexNode) -> RegexNode:
    return Concat(node, Star(node))


def optional(node: RegexNode) -> RegexNode:
    return Union_(node, Epsilon())


def up_to(node: RegexNode, count: int) -> RegexNode:
    """``node`` repeated between 0 and ``count`` times."""
    result: RegexNode = Epsilon()
    for _ in range(count):
        result = optional(Concat(node, result))
    return result


# ----------------------------------------------------------------------
# Splitters
# ----------------------------------------------------------------------

def whole_document_splitter(
    alphabet: Iterable[str], variable=SPLIT_VAR
) -> VSetAutomaton:
    """``x{Sigma*}``: the trivial splitter selecting the whole document."""
    alphabet = frozenset(alphabet)
    body = Star(char_class(alphabet)) if alphabet else Epsilon()
    return compile_regex_formula(Capture(variable, body), alphabet)


def separator_splitter(
    alphabet: Iterable[str], separators, variable=SPLIT_VAR
) -> VSetAutomaton:
    """Maximal separator-free chunks (tokenizer / paragraph / record).

    A chunk is a non-empty run of non-separator characters delimited by
    a separator (one character of ``separators``) or the document
    boundary; this covers the paper's tokenization (separator space),
    paragraph segmentation (newline), and machine-log itemization
    (record separator) splitters, and is disjoint by construction.
    """
    alphabet = frozenset(alphabet)
    separators = frozenset(separators)
    if not separators <= alphabet:
        raise ValueError("separators must be in the alphabet")
    rest = alphabet - separators
    if not rest:
        raise ValueError("alphabet must contain non-separator characters")
    any_char = char_class(alphabet)
    sep = char_class(separators)
    chunk = plus(char_class(rest))
    prefix = optional(seq(Star(any_char), sep))
    suffix = optional(seq(sep, Star(any_char)))
    formula = seq(prefix, Capture(variable, chunk), suffix)
    return compile_regex_formula(formula, alphabet)


def token_splitter(
    alphabet: Iterable[str], separators=None, variable=SPLIT_VAR
) -> VSetAutomaton:
    """Tokenization: maximal runs of non-separator characters.

    ``separators`` defaults to the whitespace characters present in
    the alphabet (space and newline).
    """
    alphabet = frozenset(alphabet)
    if separators is None:
        separators = alphabet & frozenset(" \n")
    return separator_splitter(alphabet, separators, variable)


def paragraph_splitter(
    alphabet: Iterable[str], variable=SPLIT_VAR
) -> VSetAutomaton:
    """Paragraph segmentation: chunks separated by newlines."""
    return separator_splitter(alphabet, "\n", variable)


def record_splitter(
    alphabet: Iterable[str], separator: str = "#", variable=SPLIT_VAR
) -> VSetAutomaton:
    """Machine-log itemization (e.g. HTTP messages between blank lines)."""
    return separator_splitter(alphabet, separator, variable)


def sentence_splitter(
    alphabet: Iterable[str], variable=SPLIT_VAR
) -> VSetAutomaton:
    """Sentence boundary detection for the corpus conventions above.

    A sentence starts with a non-space, non-period character, may
    contain anything but periods, and ends at its terminating period.
    """
    alphabet = frozenset(alphabet)
    if "." not in alphabet:
        raise ValueError("sentence alphabet must contain '.'")
    not_dot = alphabet - {"."}
    start_chars = not_dot - {" "}
    if not start_chars:
        raise ValueError("alphabet must contain sentence-start characters")
    any_char = char_class(alphabet)
    sentence = seq(char_class(start_chars),
                   Star(char_class(not_dot)) if not_dot else Epsilon(),
                   Literal("."))
    # Before a sentence: the document start or the previous period,
    # then any amount of padding space.
    prefix = seq(optional(seq(Star(any_char), Literal("."))),
                 Star(Literal(" ")))
    suffix = Star(any_char)
    formula = seq(prefix, Capture(variable, sentence), suffix)
    return compile_regex_formula(formula, alphabet)


def char_ngram_splitter(
    alphabet: Iterable[str], n: int, variable=SPLIT_VAR,
    include_short_documents: bool = False,
) -> VSetAutomaton:
    """Character N-grams: every window of exactly ``n`` letters.

    Non-disjoint for ``n > 1`` (Section 3), which the disjointness
    decision procedure confirms.  With ``include_short_documents=True``
    a document shorter than ``n`` yields itself as its only window —
    the convention under which the paper's "self-splittable for
    N >= 5" claims hold on arbitrary-length documents.
    """
    alphabet = frozenset(alphabet)
    if n < 1:
        raise ValueError("n must be positive")
    any_char = char_class(alphabet)
    formula: RegexNode = seq(Star(any_char),
                             Capture(variable, power(any_char, n)),
                             Star(any_char))
    if include_short_documents and n > 1:
        short = Capture(variable, up_to(any_char, n - 1))
        formula = Union_(formula, short)
    return compile_regex_formula(formula, alphabet)


def token_ngram_splitter(
    alphabet: Iterable[str], n: int, variable=SPLIT_VAR
) -> VSetAutomaton:
    """Token N-grams: windows of ``n`` consecutive space-separated tokens.

    The captured span includes the inner separating spaces, mirroring
    the local-context windows of the Introduction; non-disjoint for
    ``n > 1``.
    """
    alphabet = frozenset(alphabet)
    if " " not in alphabet:
        raise ValueError("token alphabet must contain the space separator")
    if n < 1:
        raise ValueError("n must be positive")
    word = plus(char_class(alphabet - {" "}))
    gap = plus(Literal(" "))
    window = seq(word, power(seq(gap, word), n - 1))
    any_char = char_class(alphabet)
    prefix = optional(seq(Star(any_char), Literal(" ")))
    suffix = optional(seq(Literal(" "), Star(any_char)))
    formula = seq(prefix, Capture(variable, window), suffix)
    return compile_regex_formula(formula, alphabet)


def fixed_window_splitter(
    alphabet: Iterable[str], width: int, variable=SPLIT_VAR
) -> VSetAutomaton:
    """Disjoint fixed-width tiling: blocks of ``width`` characters.

    The document is cut into consecutive blocks of exactly ``width``
    characters with a shorter final block; useful as a disjoint
    stand-in for windowed processing.
    """
    alphabet = frozenset(alphabet)
    if width < 1:
        raise ValueError("width must be positive")
    any_char = char_class(alphabet)
    block = power(any_char, width)
    short_tail = up_to(any_char, width - 1)
    full = seq(Star(block), Capture(variable, block), Star(block), short_tail)
    tail = seq(Star(block),
               Capture(variable, seq(any_char, up_to(any_char, width - 2))))
    formula = Union_(full, tail)
    return compile_regex_formula(formula, alphabet)


# ----------------------------------------------------------------------
# The name -> builder registry
# ----------------------------------------------------------------------

#: Plain names: each maps to ``builder(alphabet) -> VSetAutomaton``.
_NAMED_BUILDERS: Dict[str, Callable] = {
    "tokens": token_splitter,
    "sentences": sentence_splitter,
    "paragraphs": paragraph_splitter,
    "records": record_splitter,
    "whole": whole_document_splitter,
}

#: Parametric families ``<family><N>`` (e.g. ``ngram3``, ``window8``):
#: each maps to ``(builder(alphabet, n), default n)``.
_PARAMETRIC_BUILDERS: Dict[str, tuple] = {
    "ngram": (token_ngram_splitter, 2),
    "window": (fixed_window_splitter, 8),
}

_PARAMETRIC_NAME = _re.compile(r"^([a-z]+?)(\d*)$")


def registry() -> Dict[str, Callable]:
    """The name -> builder mapping of the plain (non-parametric) names.

    Every builder takes the document alphabet and returns the
    splitter's VSet-automaton.  Parametric families (``ngram<N>``,
    ``window<N>``) are resolved by :func:`build_named`; their family
    names are listed by :func:`known_splitter_names`.
    """
    return dict(_NAMED_BUILDERS)


def known_splitter_names() -> list:
    """Every name :func:`build_named` accepts, parametric families as
    ``family<N>`` templates (the CLI help and error-message list)."""
    return sorted(_NAMED_BUILDERS) + sorted(
        f"{family}<N>" for family in _PARAMETRIC_BUILDERS
    )


def build_named(name: str, alphabet: Iterable[str],
                variable=SPLIT_VAR) -> VSetAutomaton:
    """Build the splitter called ``name`` over ``alphabet``.

    The single dispatch point shared by the CLI and the fluent
    :meth:`repro.query.Splitter.named`: plain names come from
    :func:`registry`; ``ngram<N>`` and ``window<N>`` parse their
    integer parameter (defaulting to 2 resp. 8 when omitted).  Raises
    :class:`repro.errors.UnknownSplitterError` (carrying the
    known-names list) for anything else.
    """
    builder = _NAMED_BUILDERS.get(name)
    if builder is not None:
        return builder(alphabet, variable=variable)
    match = _PARAMETRIC_NAME.match(name)
    if match is not None and match.group(1) in _PARAMETRIC_BUILDERS:
        builder, default = _PARAMETRIC_BUILDERS[match.group(1)]
        parameter = int(match.group(2)) if match.group(2) else default
        return builder(alphabet, parameter, variable=variable)
    raise UnknownSplitterError(name, known_splitter_names())


def consecutive_sentence_pairs(
    alphabet: Iterable[str], variable=SPLIT_VAR
) -> VSetAutomaton:
    """Windows of two consecutive sentences (non-disjoint).

    The paper's example of coreference resolvers bounded to sentence
    windows (Stanford's sieve uses three); two keeps the automaton
    small while exhibiting the same non-disjointness.
    """
    alphabet = frozenset(alphabet)
    if "." not in alphabet:
        raise ValueError("sentence alphabet must contain '.'")
    not_dot = alphabet - {"."}
    start_chars = not_dot - {" "}
    any_char = char_class(alphabet)
    sentence = seq(char_class(start_chars),
                   Star(char_class(not_dot)),
                   Literal("."))
    window = seq(sentence, Literal(" "), sentence)
    prefix = optional(seq(Star(any_char), Literal("."), Literal(" ")))
    suffix = optional(seq(optional(Literal(" ")), Star(any_char)))
    formula = seq(prefix, Capture(variable, window), suffix)
    return compile_regex_formula(formula, alphabet)
