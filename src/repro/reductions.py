"""The paper's hardness reductions as instance generators.

Every PSPACE-hardness proof in the paper is constructive: it maps an
instance of a known-hard problem (DFA union universality [17], regular
expression containment/universality [16, 22]) to an instance of a
split-correctness problem with the same answer.  Coding the reductions
serves two purposes here:

* **validation** -- the tests run both the source-problem decider and
  the framework procedure on the reduction image and compare;
* **benchmarking** -- the reductions produce scalable families that
  exercise the PSPACE procedures far from the tractable fragment
  (benchmarks T2/T4).

All constructions return compiled VSet-automata over the enlarged
alphabet ``Sigma + {a}`` exactly as in the proofs.
"""

from __future__ import annotations

from typing import Hashable, Sequence, Tuple

from repro.automata.dfa import DFA
from repro.automata.nfa import EPSILON, NFA
from repro.spanners.refwords import Close, Open, gamma
from repro.spanners.regex_formulas import compile_regex_formula
from repro.spanners.vset_automaton import VSetAutomaton

Symbol = Hashable

#: The padding symbol added to the alphabet by the reductions.
PAD = "a"


def _dfa_as_nfa(dfa: DFA) -> NFA:
    return dfa.to_nfa().trim()


def _literal_chain(symbol: Symbol, count: int, alphabet) -> NFA:
    """NFA for the word ``symbol^count``."""
    transitions = [(i, symbol, i + 1) for i in range(count)]
    return NFA(alphabet, range(count + 1), 0, [count], transitions)


def spanner_from_nfa_parts(
    doc_alphabet, variables, nfa: NFA
) -> VSetAutomaton:
    """Type an NFA over ``Sigma + Gamma_V`` as a VSet-automaton."""
    alphabet = frozenset(doc_alphabet) | gamma(variables)
    lifted = NFA(alphabet, nfa.states, nfa.initial, nfa.finals,
                 nfa.transitions())
    return VSetAutomaton(doc_alphabet, variables, lifted)


def union_universality_instance(
    dfas: Sequence[DFA], alphabet: Sequence[str]
) -> bool:
    """Ground truth for the source problem ``Sigma* <= U L(A_i)``."""
    from repro.automata.containment import union_universal

    return union_universal(dfas, frozenset(alphabet))


# ----------------------------------------------------------------------
# Theorem 4.2: containment of weakly deterministic functional VSAs
# ----------------------------------------------------------------------

def weak_determinism_containment_instance(
    dfas: Sequence[DFA], alphabet: Sequence[str]
) -> Tuple[VSetAutomaton, VSetAutomaton]:
    """The reduction of Theorem 4.2.

    Returns ``(A, A')`` with variables ``x_1..x_n`` such that
    ``A(d) <= A'(d)`` for all ``d`` iff the union of the DFAs is
    universal.  ``A`` selects the whole document in every variable
    (``x1{x2{...xn{Sigma*}...}}``); every branch ``i`` of ``A'`` opens
    ``x_i`` first, then the remaining variables in increasing order,
    and accepts ``L(A_i)`` inside.  Both are weakly deterministic and
    functional but use different variable orderings — the source of
    the hardness.
    """
    n = len(dfas)
    if n == 0:
        raise ValueError("need at least one DFA")
    doc_alphabet = frozenset(alphabet)
    variables = [f"x{i}" for i in range(1, n + 1)]
    ext = doc_alphabet | gamma(variables)

    # A: open all variables in order, accept Sigma*, close in order.
    transitions = []
    state = 0
    for i, var in enumerate(variables):
        transitions.append((state, Open(var), state + 1))
        state += 1
    loop = state
    for symbol in doc_alphabet:
        transitions.append((loop, symbol, loop))
    for var in reversed(variables):
        transitions.append((state, Close(var), state + 1))
        state += 1
    a = VSetAutomaton(
        doc_alphabet, variables,
        NFA(ext, range(state + 1), 0, [state], transitions),
    )

    # A': one branch per i, opening x_i before the others.
    branch_nfas = []
    for i in range(n):
        order = [variables[i]] + [v for j, v in enumerate(variables)
                                  if j != i]
        inner = _dfa_as_nfa(dfas[i])
        transitions = []
        states = set()
        prev = ("open", i, 0)
        states.add(prev)
        for k, var in enumerate(order):
            nxt = ("open", i, k + 1)
            transitions.append((prev, Open(var), nxt))
            states.add(nxt)
            prev = nxt
        # plug in L(A_i)
        for source, symbol, target in inner.transitions():
            transitions.append((("in", i, source), symbol,
                                ("in", i, target)))
        transitions.append((prev, EPSILON, ("in", i, inner.initial)))
        close_order = sorted(variables)
        close_prev = [("in", i, f) for f in inner.finals]
        for k, var in enumerate(reversed(order)):
            nxt = ("close", i, k)
            for source in close_prev:
                transitions.append((source, Close(var), nxt))
            close_prev = [nxt]
            states.add(nxt)
        final = close_prev[0] if close_prev else None
        nfa = NFA(ext, states, ("open", i, 0),
                  [final] if final else [], transitions)
        branch_nfas.append(nfa)
    combined = branch_nfas[0]
    for nfa in branch_nfas[1:]:
        combined = combined.union(nfa)
    lifted = NFA(ext, combined.states, combined.initial, combined.finals,
                 combined.transitions())
    a_prime = VSetAutomaton(doc_alphabet, variables, lifted)
    return a, a_prime


# ----------------------------------------------------------------------
# Theorem 5.1 / Lemma 5.4: split-correctness and the cover condition
# ----------------------------------------------------------------------

def split_correctness_instance(
    dfas: Sequence[DFA], alphabet: Sequence[str]
) -> Tuple[VSetAutomaton, VSetAutomaton, VSetAutomaton]:
    """The reduction of Theorem 5.1 (also Lemma 5.4's cover instance).

    Over ``Sigma' = Sigma + {a}`` build ``P = a^n . y{Sigma*}``,
    ``S = x{a^n A_1} + a x{a^{n-1} A_2} + ... + a^{n-1} x{a A_n}``, and
    ``P_S = a* . y{Sigma*}``.  Then ``P = P_S o S`` iff the union of
    the DFAs covers ``Sigma*``.  (The paper names the split-spanner's
    variable ``z``; it must match ``P``'s for the equality to type,
    so ``y`` is used.)
    """
    n = len(dfas)
    if n == 0:
        raise ValueError("need at least one DFA")
    if PAD in alphabet:
        raise ValueError(f"source alphabet must not contain {PAD!r}")
    sigma = frozenset(alphabet)
    sigma_prime = sigma | {PAD}
    ext_p = sigma_prime | gamma(["y"])
    ext_s = sigma_prime | gamma(["x"])

    # P = a^n y{Sigma*} (captures only source-alphabet suffixes).
    transitions = [(i, PAD, i + 1) for i in range(n)]
    transitions.append((n, Open("y"), n + 1))
    for symbol in sigma:
        transitions.append((n + 1, symbol, n + 1))
    transitions.append((n + 1, Close("y"), n + 2))
    p = VSetAutomaton(
        sigma_prime, ["y"],
        NFA(ext_p, range(n + 3), 0, [n + 2], transitions),
    )

    # S: branch i (1-based) reads a^{i-1}, opens x, reads a^{n-i+1},
    # then L(A_i), closes x.
    branches = []
    for i in range(1, n + 1):
        prefix = _literal_chain(PAD, i - 1, ext_s)
        inner_pad = _literal_chain(PAD, n - i + 1, ext_s)
        lang = _dfa_as_nfa(dfas[i - 1])
        lang = NFA(ext_s, lang.states, lang.initial, lang.finals,
                   lang.transitions())
        body = inner_pad.concatenate(lang)
        # x{ body }
        states = set(body.states) | {"xo", "xc"}
        transitions = list(body.transitions())
        transitions.append(("xo", Open("x"), body.initial))
        for final in body.finals:
            transitions.append((final, Close("x"), "xc"))
        wrapped = NFA(ext_s, states, "xo", ["xc"], transitions)
        branches.append(prefix.concatenate(wrapped))
    combined = branches[0]
    for branch in branches[1:]:
        combined = combined.union(branch)
    s = VSetAutomaton(
        sigma_prime, ["x"],
        NFA(ext_s, combined.states, combined.initial, combined.finals,
            combined.transitions()),
    )

    # P_S = a* y{Sigma*}.
    transitions = [(0, PAD, 0), (0, Open("y"), 1)]
    for symbol in sigma:
        transitions.append((1, symbol, 1))
    transitions.append((1, Close("y"), 2))
    p_s = VSetAutomaton(
        sigma_prime, ["y"],
        NFA(ext_p, range(3), 0, [2], transitions),
    )
    return p, p_s, s


# ----------------------------------------------------------------------
# Theorems 5.15 and 5.16: splittability and self-splittability
# ----------------------------------------------------------------------

def splittability_instance(
    pattern_r1: str, pattern_r2: str, alphabet: Sequence[str]
) -> Tuple[VSetAutomaton, VSetAutomaton]:
    """Theorem 5.15's reduction from regular-expression containment.

    ``P`` is the Boolean spanner for ``r1`` and ``S = x{r2}``; ``P`` is
    splittable by ``S`` iff ``L(r1) <= L(r2)``.
    """
    p = compile_regex_formula(pattern_r1, alphabet)
    if p.variables:
        raise ValueError("r1 must be variable-free")
    s = compile_regex_formula("x{%s}" % pattern_r2, alphabet)
    return p, s


def self_splittability_instance(
    formula_r1: str, formula_r2: str, alphabet: Sequence[str]
) -> Tuple[VSetAutomaton, VSetAutomaton]:
    """Theorem 5.16's reduction, corrected (see EXPERIMENTS.md, F-3).

    Over ``Sigma' = Sigma + {a}``: ``P = r1 + (a . r2)`` and
    ``S = a? x{Sigma*}`` with the split body over the *source*
    alphabet.  The paper claims ``P`` is self-splittable by ``S`` iff
    ``[[r1]] <= [[r2]]``; running the decision procedure against brute
    force exposes counterexamples to both readings of the proof (e.g.
    ``r1 = b*``, ``r2 = (b|c)*``, document ``ac``): the correct
    criterion for this construction is ``[[r1]] == [[r2]]``
    (*equivalence*).  PSPACE-hardness is unaffected — containment
    reduces to equivalence via ``r1 <= r2  iff  r1 + r2 == r2``.
    """
    if PAD in alphabet:
        raise ValueError(f"source alphabet must not contain {PAD!r}")
    sigma_prime = frozenset(alphabet) | {PAD}
    r1 = compile_regex_formula(formula_r1, sigma_prime)
    r2 = compile_regex_formula(formula_r2, sigma_prime)
    if r1.variables != r2.variables:
        raise ValueError("r1 and r2 must share their variables")
    from repro.spanners.algebra import concat_language_left, union as sp_union

    pad_nfa = _literal_chain(PAD, 1, sigma_prime)
    p = sp_union(r1, concat_language_left(pad_nfa, r2))
    # The split body ranges over the *source* alphabet only: the fresh
    # padding symbol marks the optional prefix and nothing else.
    body = "|".join("\\" + c if c in "()|*+?.~!\\{}" else c
                    for c in sorted(alphabet))
    s = compile_regex_formula(f"{PAD}?x{{({body})*}}", sigma_prime)
    return p, s
