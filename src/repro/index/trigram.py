"""The :class:`CorpusIndex`: a q-gram posting index over corpus chunks.

The engine deduplicates chunk *texts* corpus-wide (one evaluation per
distinct text); this index carries that idea one step earlier in the
pipeline: index every distinct chunk text by its 1/2/3-grams **once**,
then answer "which chunks could possibly match this program?" for any
number of future queries by posting-list arithmetic — no automaton,
no substring scan, just bitmask intersections (the Google Code Search
trigram-index design, applied to split-correct chunks).

Posting lists are integer bitmasks over dense text ids, so candidate
computation is a handful of ``&``/``|`` operations regardless of
corpus size.  Indexes build incrementally — per document, per shard
(:meth:`CorpusIndex.add_shard`), or over a whole corpus — and persist
to a self-contained JSON file so a corpus is indexed once and queried
many times (``repro index`` on the CLI builds one).

Soundness mirrors :class:`repro.index.factors.FactorSet`:

* a required factor of length <= 3 *is* a gram: its posting list is
  exact;
* a longer required factor is approximated by intersecting its
  trigrams' postings (a superset of the texts containing it — the
  per-chunk scan in :class:`repro.index.filter.IndexFilter` removes
  the false positives);
* the trigram OR-set admits every text shorter than 3 characters
  (tracked in a dedicated mask) since such texts have no trigrams.

A text the index has never seen simply falls back to the scan path —
an index built with one splitter stays *sound* (merely less useful)
under a plan that splits differently.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.errors import IndexFormatError
from repro.index.factors import GRAM, FactorSet

_FORMAT_VERSION = 1


def grams_of(text: str) -> Set[str]:
    """The distinct 1..``GRAM``-grams of a chunk text.

    The posting vocabulary shared by the JSON index below and the
    binary segment store (:mod:`repro.index.store`): both must index
    exactly the grams :meth:`CorpusIndex.candidates` queries.
    """
    grams: Set[str] = set()
    for size in range(1, GRAM + 1):
        for start in range(len(text) - size + 1):
            grams.add(text[start:start + size])
    return grams


class CorpusIndex:
    """A persistent posting index over distinct chunk texts.

    ``splitter`` records (informationally) which splitter produced the
    indexed chunks; lookups are by exact chunk text, so a mismatched
    splitter degrades to scan-mode filtering rather than wrong answers.
    """

    #: Storage-format tag surfaced in ``explain()["index"]`` (the
    #: binary store reports ``"binary-segments"``).
    format = "json"

    def __init__(self, splitter: Optional[str] = None) -> None:
        self.splitter = splitter
        self._texts: List[str] = []
        self._ids: Dict[str, int] = {}
        #: gram (length 1..GRAM) -> bitmask over text ids.
        self._postings: Dict[str, int] = {}
        #: Texts shorter than GRAM (exempt from the trigram OR-filter).
        self._short = 0
        #: Bumped whenever a new text is indexed; consumers holding
        #: derived state (an :class:`repro.index.filter.IndexFilter`'s
        #: candidate mask) compare it to recompute after incremental
        #: growth instead of pruning against a stale snapshot.
        self.version = 0
        self.documents = 0
        self.chunk_instances = 0
        self.shards_indexed = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def build(
        cls,
        corpus,
        splitter,
        name: Optional[str] = None,
        num_shards: int = 1,
    ) -> "CorpusIndex":
        """Index every chunk of ``corpus`` under ``splitter``.

        ``corpus`` is a :class:`repro.engine.Corpus` (or anything its
        constructor helpers accept); ``splitter`` is anything with
        ``chunks(text)``/``splits(text)`` (a fluent
        :class:`repro.query.Splitter`, a fast splitter) or a unary
        VSet-automaton.  With ``num_shards > 1`` the corpus is
        partitioned deterministically and indexed shard by shard —
        the loop a cluster of indexers would distribute.
        """
        from repro.engine.engine import _as_corpus

        corpus = _as_corpus(corpus)
        index = cls(splitter=name or getattr(splitter, "name", None))
        if num_shards <= 1:
            index.add_shard(corpus, splitter)
        else:
            for shard in corpus.shards(num_shards):
                index.add_shard(shard, splitter)
        return index

    @staticmethod
    def _chunk_texts(splitter, text: str) -> List[str]:
        if hasattr(splitter, "chunks"):
            return list(splitter.chunks(text))
        from repro.runtime.executor import splitter_spans

        return [span.extract(text)
                for span in splitter_spans(splitter, text)]

    def add_shard(self, corpus, splitter) -> int:
        """Index one corpus shard; returns distinct texts added."""
        before = len(self._texts)
        for document in corpus:
            self.add_document(self._chunk_texts(splitter, document.text))
        self.shards_indexed += 1
        return len(self._texts) - before

    def add_document(self, chunk_texts: Iterable[str]) -> None:
        """Index one document's chunk texts (repeats deduplicate)."""
        self.documents += 1
        for text in chunk_texts:
            self.chunk_instances += 1
            self.add_text(text)

    def add_text(self, text: str) -> int:
        """Index one chunk text; returns its (stable) text id."""
        tid = self._ids.get(text)
        if tid is not None:
            return tid
        tid = len(self._texts)
        self._ids[text] = tid
        self._texts.append(text)
        bit = 1 << tid
        postings = self._postings
        for gram in grams_of(text):
            postings[gram] = postings.get(gram, 0) | bit
        if len(text) < GRAM:
            self._short |= bit
        self.version += 1
        return tid

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._texts)

    def __contains__(self, text: str) -> bool:
        return text in self._ids

    def text_id(self, text: str) -> Optional[int]:
        """The id of an indexed chunk text, or ``None``."""
        return self._ids.get(text)

    def gram_count(self) -> int:
        return len(self._postings)

    @property
    def segment_count(self) -> int:
        """A JSON index is one monolithic 'segment' (API parity with
        :class:`repro.index.store.SegmentedIndex`)."""
        return 1

    def candidates(self, factors: FactorSet) -> Optional[int]:
        """Bitmask of indexed texts that *could* satisfy ``factors``.

        Sound over-approximation: a clear bit proves the text fails a
        necessary condition; a set bit still needs the exact per-text
        scan (long factors are approximated by their trigrams).
        Returns ``None`` when no condition is answerable from postings
        (the filter then runs in pure scan mode).
        """
        count = len(self._texts)
        if count == 0:
            return None
        if factors.empty:
            return 0
        everything = (1 << count) - 1
        mask = everything
        useful = False
        for factor in factors.required:
            if len(factor) <= GRAM:
                mask &= self._postings.get(factor, 0)
            else:
                approximation = everything
                for start in range(len(factor) - GRAM + 1):
                    approximation &= self._postings.get(
                        factor[start:start + GRAM], 0
                    )
                mask &= approximation
            useful = True
        if factors.trigrams is not None:
            union = self._short
            for trigram in factors.trigrams:
                union |= self._postings.get(trigram, 0)
            mask &= union
            useful = True
        if factors.min_length > 0:
            length_mask = 0
            for tid, text in enumerate(self._texts):
                if len(text) >= factors.min_length:
                    length_mask |= 1 << tid
            if length_mask != everything:
                mask &= length_mask
                useful = True
        return mask if useful else None

    def describe(self) -> Dict[str, object]:
        """Summary counters (the CLI's build report)."""
        return {
            "format": self.format,
            "splitter": self.splitter,
            "documents": self.documents,
            "chunk_instances": self.chunk_instances,
            "distinct_texts": len(self._texts),
            "grams": self.gram_count(),
            "shards_indexed": self.shards_indexed,
        }

    def __repr__(self) -> str:
        return (f"CorpusIndex({len(self._texts)} texts, "
                f"{self.gram_count()} grams, "
                f"splitter={self.splitter!r})")

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def save(self, path: str) -> None:
        """Write a self-contained JSON snapshot of the index."""
        payload = {
            "version": _FORMAT_VERSION,
            "splitter": self.splitter,
            "documents": self.documents,
            "chunk_instances": self.chunk_instances,
            "shards_indexed": self.shards_indexed,
            "texts": self._texts,
            "postings": {
                gram: _mask_to_ids(mask)
                for gram, mask in sorted(self._postings.items())
            },
        }
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, ensure_ascii=False)

    @classmethod
    def load(cls, path: str) -> "CorpusIndex":
        """Rebuild an index saved by :meth:`save`.

        Raises :class:`repro.errors.IndexFormatError` for files that
        are not JSON corpus indexes (bad payload shape) or claim an
        unsupported format version.
        """
        with open(path, encoding="utf-8") as handle:
            try:
                payload = json.load(handle)
            except ValueError as error:
                raise IndexFormatError(
                    f"not a JSON corpus index ({error})", path=path
                ) from error
        if not isinstance(payload, dict) or "postings" not in payload:
            raise IndexFormatError(
                "not a JSON corpus index (no postings payload)", path=path
            )
        version = payload.get("version")
        if version != _FORMAT_VERSION:
            raise IndexFormatError(
                f"unsupported corpus-index format version {version!r}",
                path=path,
            )
        index = cls(splitter=payload.get("splitter"))
        index.documents = int(payload.get("documents", 0))
        index.chunk_instances = int(payload.get("chunk_instances", 0))
        index.shards_indexed = int(payload.get("shards_indexed", 0))
        index._texts = list(payload["texts"])
        index._ids = {text: tid for tid, text in enumerate(index._texts)}
        index._postings = {
            gram: _ids_to_mask(ids)
            for gram, ids in payload["postings"].items()
        }
        for tid, text in enumerate(index._texts):
            if len(text) < GRAM:
                index._short |= 1 << tid
        return index


#: Bits set per byte value, for linear-time mask decomposition.
_BYTE_BITS = [
    tuple(bit for bit in range(8) if value >> bit & 1)
    for value in range(256)
]


def _mask_to_ids(mask: int) -> List[int]:
    """The set bit positions of ``mask``, in ascending order.

    Byte-at-a-time over ``int.to_bytes`` — linear in the mask width,
    where the shift-by-shift loop was quadratic (it rebuilt the big
    int on every shift; visible on 100k-text indexes).
    """
    ids: List[int] = []
    if mask:
        raw = mask.to_bytes((mask.bit_length() + 7) // 8, "little")
        for base, value in enumerate(raw):
            if value:
                offset = base * 8
                ids.extend(offset + bit for bit in _BYTE_BITS[value])
    return ids


def _ids_to_mask(ids: Sequence[int]) -> int:
    """The bitmask with exactly ``ids`` set (linear, via a bytearray;
    ``mask |= 1 << tid`` per id copies the whole big int each time)."""
    if not ids:
        return 0
    raw = bytearray(max(ids) // 8 + 1)
    for tid in ids:
        raw[tid >> 3] |= 1 << (tid & 7)
    return int.from_bytes(bytes(raw), "little")
