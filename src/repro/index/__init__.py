"""Corpus index subsystem: match first where matching is cheap.

Split-correctness makes chunks independent units of work; this package
makes most of them *free*: it derives, per certified plan, the literal
material every matching chunk must contain
(:mod:`repro.index.factors`), optionally maintains a persistent
trigram posting index over a corpus's chunks
(:mod:`repro.index.trigram`), and gates the engine's chunk loop with
an :class:`IndexFilter` (:mod:`repro.index.filter`) that skips chunks
which provably produce no tuples — before any automaton runs.

The production pattern (the Google Code Search recipe, applied to
split-correct plans)::

    from repro import CorpusIndex, Q, Spanner, Splitter
    from repro.engine import Corpus

    corpus = Corpus.from_texts(texts)
    sentences = Splitter.named("sentences", alphabet)
    index = CorpusIndex.build(corpus, sentences)     # once per corpus
    index.save("corpus.idx")                          # query many times

    spanner = Spanner.regex(".*x{qz+}.*", alphabet)
    results = Q(spanner).split_by(sentences).indexed(index).over(corpus)
    results.explain()["index"]          # factors, mode, pruning stats
    results.stats().chunks_pruned       # chunks never evaluated

Everything is sound by construction: pruning decisions are necessary
conditions verified against the plan's matching NFA, so indexed and
unindexed runs produce identical span results — a spanner with no
extractable factors simply falls back to full evaluation.
"""

from repro.index.factors import FactorSet, factors_of
from repro.index.filter import IndexFilter
from repro.index.store import SegmentedIndex, open_index
from repro.index.trigram import CorpusIndex

__all__ = [
    "CorpusIndex",
    "FactorSet",
    "IndexFilter",
    "SegmentedIndex",
    "factors_of",
    "open_index",
]
