"""The :class:`IndexFilter`: a certified plan's chunk-skipping gate.

An ``IndexFilter`` binds a plan's necessary factors
(:class:`repro.index.factors.FactorSet`, derived once per certificate)
to an optional :class:`repro.index.trigram.CorpusIndex`.  The engine
asks it one question per chunk — :meth:`admits` — *before* any
automaton runs:

* **indexed mode** (index attached, chunk text indexed): one bitmask
  lookup answers every posting-list-expressible condition at once,
  so a rejected chunk skips the substring scan;
* **scan mode** (no index, or unseen text): the factor conditions are
  checked directly on the chunk text — substring containment and a
  rolling trigram probe, still orders of magnitude cheaper than the
  automaton the skip avoids.

Decisions are memoized per distinct chunk text, so the corpus-wide
text duplication the engine already exploits for chunk caching makes
repeated instances of a chunk cost one dict lookup here.  The
candidate bitmask tracks the index's :attr:`repro.index.trigram.
CorpusIndex.version`: an index grown incrementally (per shard, per
document) after the filter was built triggers a recomputation instead
of pruning new texts against a stale snapshot.

Soundness is inherited from the factor analysis: ``admits`` returning
``False`` proves the chunk's result set is empty, so pruned chunks
contribute exactly what evaluating them would have — nothing.  The
candidate bitmask over-approximates (long factors are trigram-
approximated), so admitted chunks still pass through the exact scan.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.index.factors import FactorSet

#: The duck-typed index contract this filter binds to: anything with
#: ``candidates(factors)``, ``text_id(text)``, ``version`` and
#: ``splitter`` qualifies — the JSON :class:`repro.index.trigram.
#: CorpusIndex` and the binary :class:`repro.index.store.
#: SegmentedIndex` both do.
IndexLike = object


class IndexFilter:
    """Prune chunks a certified plan provably produces nothing on.

    ``metrics``/``plan`` optionally attach a
    :class:`repro.obs.metrics.Metrics` registry: every admit decision
    then feeds per-plan counters (``index.admitted``, ``index.pruned``,
    ``index.memo_hits``, each labeled ``plan=<prefix>``), so an
    exposition over a multi-plan engine shows which certificate's
    filter is doing the pruning.
    """

    __slots__ = ("factors", "index", "_mask", "_mask_version",
                 "_decisions", "_admitted", "_pruned", "_memo_hits")

    def __init__(
        self,
        factors: FactorSet,
        index: Optional[IndexLike] = None,
        metrics: Optional[object] = None,
        plan: Optional[str] = None,
    ) -> None:
        self.factors = factors
        self.index = index
        if metrics is not None:
            labels = {"plan": plan} if plan else {}
            self._admitted = metrics.counter("index.admitted", **labels)
            self._pruned = metrics.counter("index.pruned", **labels)
            self._memo_hits = metrics.counter("index.memo_hits", **labels)
        else:
            self._admitted = self._pruned = self._memo_hits = None
        #: Candidate bitmask over the index's text ids (None = the
        #: index cannot answer any condition; pure scan mode).
        self._mask: Optional[int] = None
        self._mask_version: Optional[int] = None
        #: Memoized admit decision per distinct chunk text (unbounded,
        #: like the engine's default chunk cache — one bool per
        #: distinct chunk the corpus exhibits).
        self._decisions: Dict[str, bool] = {}
        self._refresh_mask()

    def _refresh_mask(self) -> None:
        if self.index is not None:
            self._mask = self.index.candidates(self.factors)
            self._mask_version = self.index.version

    @property
    def mode(self) -> str:
        return "indexed" if self._mask is not None else "scan"

    def admits(self, text: str) -> bool:
        """Whether ``text`` must be evaluated (False = provably empty)."""
        if (self.index is not None
                and self._mask_version != self.index.version):
            # The index grew since the mask snapshot: recompute, and
            # drop memoized decisions that may have used the old mask.
            self._refresh_mask()
            self._decisions.clear()
        decision = self._decisions.get(text)
        if decision is None:
            decision = self._admits_uncached(text)
            self._decisions[text] = decision
            counter = self._admitted if decision else self._pruned
            if counter is not None:
                counter.inc()
        elif self._memo_hits is not None:
            self._memo_hits.inc()
        return decision

    def _admits_uncached(self, text: str) -> bool:
        if self._mask is not None:
            tid = self.index.text_id(text)
            if tid is not None and not (self._mask >> tid) & 1:
                # Posting-list rejection; sound only for in-alphabet
                # texts (foreign chunks must keep their evaluation-time
                # error, exactly as FactorSet.admits guarantees).
                if self.factors.alphabet.issuperset(text):
                    return False
        return self.factors.admits(text)

    def describe(self) -> Dict[str, object]:
        """A flat report for ``ResultSet.explain()`` and the CLI."""
        report: Dict[str, object] = {"mode": self.mode}
        report.update(self.factors.describe())
        if self.index is not None:
            report["indexed_texts"] = len(self.index)
            report["index_splitter"] = self.index.splitter
            report["index_format"] = getattr(self.index, "format",
                                             "unknown")
            report["index_segments"] = getattr(self.index,
                                               "segment_count", 1)
        return report

    def __repr__(self) -> str:
        return (f"IndexFilter(mode={self.mode!r}, "
                f"required={list(self.factors.required)!r})")
