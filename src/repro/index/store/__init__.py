"""Binary mmap-able index storage (segments, tombstones, compaction).

The storage engine behind ``repro index --format binary``: immutable
binary segment files (:mod:`repro.index.store.segment`) composed into
a delta-maintainable :class:`SegmentedIndex`
(:mod:`repro.index.store.segmented`) that satisfies the same
candidate-mask contract as the JSON
:class:`repro.index.trigram.CorpusIndex`.  :func:`open_index` opens
either format from a path, so engine, CLI and service code never
branch on storage.
"""

from __future__ import annotations

import os

from repro.errors import IndexFormatError
from repro.index.store.segment import (
    Segment,
    splitter_fingerprint,
    text_digest,
    write_segment,
)
from repro.index.store.segmented import MANIFEST_NAME, SegmentedIndex


def open_index(path: str):
    """Open a persisted index, whatever its storage format.

    A directory holding a segment manifest opens as a (mmap-backed)
    :class:`SegmentedIndex`; a file opens as a JSON
    :class:`repro.index.trigram.CorpusIndex`.  Raises
    :class:`repro.errors.IndexFormatError` when the path is neither.
    """
    from repro.index.trigram import CorpusIndex

    if os.path.isdir(path):
        if not os.path.exists(os.path.join(path, MANIFEST_NAME)):
            raise IndexFormatError(
                "directory holds no index manifest", path=path
            )
        return SegmentedIndex.open(path)
    if not os.path.exists(path):
        raise IndexFormatError("no such index", path=path)
    return CorpusIndex.load(path)


__all__ = [
    "IndexFormatError",
    "MANIFEST_NAME",
    "Segment",
    "SegmentedIndex",
    "open_index",
    "splitter_fingerprint",
    "text_digest",
    "write_segment",
]
