"""One immutable, ``mmap``-loadable index segment.

A segment is the binary on-disk unit of the storage engine
(:mod:`repro.index.store`): the postings of one batch of distinct
chunk texts, written once (:func:`write_segment`, atomic via a
temp-file ``os.replace``) and from then on only ever *mapped* —
:class:`Segment` opens the file read-only through :mod:`mmap`, parses
a fixed-size header, and answers every query by binary search and
slice arithmetic over the mapping.  Opening costs a handful of page
faults regardless of segment size; nothing is parsed, decompressed or
copied up front, so a multi-GB index is usable in milliseconds and
any number of processes opening the same file share its pages through
the OS page cache.

File layout (all integers little-endian)::

    magic 'RIS1' | u32 format version | u32 meta length | meta JSON
    TOC:  u32 text count N
          u64 offset of text-offsets block     ((N+1) x u64)
          u64 offset of text-lengths block     (N x u32, char lengths)
          u64 offset of digest table           (N x (20B sha1 + u32 id))
          u32 gram count G
          u64 offset of gram-offsets block     ((G+1) x u64)
          u64 offset of gram entries           (G x (u8 tag, u64, u32))
          u64 offset of short-text bitmap      (ceil(N/8) bytes)
          u64 total file size (truncation check)
    blocks ... text blob | gram blob | posting payloads

*Texts* are stored UTF-8, sorted by their encoded bytes; a text's
local id is its sorted position, so lookups are binary searches with
zero-copy byte comparisons.  The *digest table* maps sha1(text) to
local id (sorted by digest) so tombstones — which carry digests, not
texts — resolve without decoding anything.  *Grams* are the sorted
1..3-gram dictionary; each entry names its posting payload's encoding:
a fixed-width **bitmap** over local ids, or a **delta-varint** id
list, chosen per gram by whichever is smaller (dense grams get the
bitmap, rare ones the list — the density split of the Google Code
Search trigram index).  The meta JSON records the producing splitter
and its fingerprint, so an index directory can refuse segments built
under a different chunking.

Payload access is zero-copy up to the final ``int`` conversion: the
reader slices :class:`memoryview`\\ s of the mapping and materializes
a posting only when a query first touches its gram (memoized).  All
public return values own their bytes, so :meth:`Segment.close` can
always release the mapping.
"""

from __future__ import annotations

import hashlib
import json
import mmap
import os
import struct
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import IndexFormatError
from repro.index.factors import GRAM, FactorSet
from repro.index.trigram import grams_of

MAGIC = b"RIS1"
FORMAT_VERSION = 1

_PREAMBLE = struct.Struct("<4sII")          # magic, version, meta length
_TOC = struct.Struct("<IQQQIQQQQ")
_U64 = struct.Struct("<Q")
_U32 = struct.Struct("<I")
_DIGEST = struct.Struct("<20sI")            # sha1, local id
_GRAM_ENTRY = struct.Struct("<BQI")         # tag, payload offset, length

#: Posting payload encodings.
TAG_BITMAP = 1
TAG_VARINT = 2


def text_digest(text: str) -> bytes:
    """The 20-byte identity of a chunk text (sha1 of its UTF-8)."""
    return hashlib.sha1(text.encode("utf-8")).digest()


def splitter_fingerprint(name: Optional[str]) -> str:
    """Stable hex fingerprint of a splitter name (``-`` for none)."""
    if not name:
        return "-"
    return hashlib.sha1(name.encode("utf-8")).hexdigest()[:16]


def _encode_varint(value: int) -> bytes:
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def _decode_varints(raw) -> List[int]:
    values: List[int] = []
    current = 0
    shift = 0
    for byte in raw:
        current |= (byte & 0x7F) << shift
        if byte & 0x80:
            shift += 7
        else:
            values.append(current)
            current = 0
            shift = 0
    return values


def _ids_to_bitmap_bytes(ids: Sequence[int], count: int) -> bytes:
    raw = bytearray((count + 7) // 8)
    for tid in ids:
        raw[tid >> 3] |= 1 << (tid & 7)
    return bytes(raw)


# ----------------------------------------------------------------------
# Writing
# ----------------------------------------------------------------------


def write_segment(
    path: str,
    texts: Iterable[str],
    splitter: Optional[str] = None,
    meta: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Write one segment for ``texts`` (deduplicated); returns a
    summary dict (texts, grams, bytes, encodings chosen).

    The write is **atomic**: everything lands in ``path + '.tmp'``,
    is fsynced, and only then renamed over ``path`` — a crash leaves
    either the old file or no file, never a torn segment.
    """
    encoded = sorted({text.encode("utf-8") for text in texts})
    decoded = [raw.decode("utf-8") for raw in encoded]
    count = len(decoded)

    from array import array

    postings: Dict[str, array] = {}
    short_ids: List[int] = []
    for tid, text in enumerate(decoded):
        for gram in grams_of(text):
            posting = postings.get(gram)
            if posting is None:
                posting = postings[gram] = array("I")
            posting.append(tid)
        if len(text) < GRAM:
            short_ids.append(tid)

    grams = sorted(postings)
    gram_blob_parts: List[bytes] = []
    gram_offsets: List[int] = [0]
    for gram in grams:
        raw = gram.encode("utf-8")
        gram_blob_parts.append(raw)
        gram_offsets.append(gram_offsets[-1] + len(raw))
    gram_blob = b"".join(gram_blob_parts)

    bitmap_size = (count + 7) // 8
    payloads: List[Tuple[int, bytes]] = []
    bitmaps = varints = 0
    for gram in grams:
        ids = postings[gram]
        parts = [_encode_varint(ids[0])] if len(ids) else []
        for previous, current in zip(ids, ids[1:] if len(ids) else []):
            parts.append(_encode_varint(current - previous))
        varint_payload = b"".join(parts)
        if bitmap_size < len(varint_payload):
            payloads.append(
                (TAG_BITMAP, _ids_to_bitmap_bytes(ids, count))
            )
            bitmaps += 1
        else:
            payloads.append((TAG_VARINT, varint_payload))
            varints += 1

    meta_payload = dict(meta or {})
    meta_payload.setdefault("splitter", splitter)
    meta_payload["splitter_fingerprint"] = splitter_fingerprint(
        meta_payload.get("splitter")
    )
    meta_raw = json.dumps(meta_payload, ensure_ascii=False,
                          sort_keys=True).encode("utf-8")

    # Lay the blocks out back to back and resolve absolute offsets.
    offset = _PREAMBLE.size + len(meta_raw) + _TOC.size
    off_text_offsets = offset
    offset += (count + 1) * _U64.size
    off_text_lengths = offset
    offset += count * _U32.size
    off_digests = offset
    offset += count * _DIGEST.size
    off_gram_offsets = offset
    offset += (len(grams) + 1) * _U64.size
    off_gram_entries = offset
    offset += len(grams) * _GRAM_ENTRY.size
    off_short = offset
    offset += bitmap_size
    off_text_blob = offset
    offset += sum(len(raw) for raw in encoded)
    off_gram_blob = offset
    offset += len(gram_blob)
    off_payloads = offset
    payload_entries: List[bytes] = []
    for tag, payload in payloads:
        payload_entries.append(
            _GRAM_ENTRY.pack(tag, offset, len(payload))
        )
        offset += len(payload)
    total_size = offset

    digest_rows = sorted(
        (hashlib.sha1(raw).digest(), tid)
        for tid, raw in enumerate(encoded)
    )

    parts: List[bytes] = [
        _PREAMBLE.pack(MAGIC, FORMAT_VERSION, len(meta_raw)),
        meta_raw,
        _TOC.pack(count, off_text_offsets, off_text_lengths,
                  off_digests, len(grams), off_gram_offsets,
                  off_gram_entries, off_short, total_size),
    ]
    text_offsets = [off_text_blob]
    for raw in encoded:
        text_offsets.append(text_offsets[-1] + len(raw))
    parts.append(b"".join(_U64.pack(value) for value in text_offsets))
    parts.append(b"".join(_U32.pack(len(text)) for text in decoded))
    parts.append(b"".join(_DIGEST.pack(digest, tid)
                          for digest, tid in digest_rows))
    parts.append(b"".join(_U64.pack(off_gram_blob + value)
                          for value in gram_offsets))
    parts.append(b"".join(payload_entries))
    parts.append(_ids_to_bitmap_bytes(short_ids, count))
    parts.extend(encoded)
    parts.append(gram_blob)
    parts.extend(payload for _tag, payload in payloads)

    image = b"".join(parts)
    assert len(image) == total_size
    temp = path + ".tmp"
    with open(temp, "wb") as handle:
        handle.write(image)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(temp, path)
    return {
        "path": path,
        "texts": count,
        "grams": len(grams),
        "bytes": total_size,
        "bitmap_postings": bitmaps,
        "varint_postings": varints,
    }


# ----------------------------------------------------------------------
# Reading
# ----------------------------------------------------------------------


class Segment:
    """A read-only, memory-mapped index segment.

    Construction maps the file and parses ~100 bytes of header; every
    other structure is touched lazily.  Posting masks are memoized as
    Python ints per gram once a query needs them.  Instances are not
    thread-safe for concurrent first-touch of the same gram (the
    engine's dispatcher-thread ownership makes that moot); closing
    releases the mapping, after which queries raise ``ValueError``.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        try:
            with open(path, "rb") as handle:
                self._mmap = mmap.mmap(handle.fileno(), 0,
                                       access=mmap.ACCESS_READ)
        except ValueError as error:  # zero-length file cannot be mapped
            raise IndexFormatError(
                f"not an index segment ({error})", path=path
            ) from error
        view = memoryview(self._mmap)
        try:
            if len(view) < _PREAMBLE.size:
                raise IndexFormatError("truncated segment header",
                                       path=path)
            magic, version, meta_length = _PREAMBLE.unpack_from(view, 0)
            if magic != MAGIC:
                raise IndexFormatError(
                    f"bad magic {magic!r} (not an index segment)",
                    path=path,
                )
            if version != FORMAT_VERSION:
                raise IndexFormatError(
                    f"unsupported segment format version {version}",
                    path=path,
                )
            toc_start = _PREAMBLE.size + meta_length
            if len(view) < toc_start + _TOC.size:
                raise IndexFormatError("truncated segment TOC",
                                       path=path)
            self.meta: Dict[str, object] = json.loads(
                bytes(view[_PREAMBLE.size:toc_start]).decode("utf-8")
            )
            (self._count, self._off_text_offsets,
             self._off_text_lengths, self._off_digests,
             self._gram_count, self._off_gram_offsets,
             self._off_gram_entries, self._off_short,
             total_size) = _TOC.unpack_from(view, toc_start)
            if total_size != len(view):
                raise IndexFormatError(
                    f"segment size mismatch (header says {total_size} "
                    f"bytes, file has {len(view)})", path=path,
                )
        except Exception:
            view.release()
            self._mmap.close()
            raise
        self._view = view
        self._masks: Dict[str, Optional[int]] = {}
        self._short_mask: Optional[int] = None
        self._length_masks: Dict[int, int] = {}

    # -- identity ------------------------------------------------------

    @property
    def splitter(self) -> Optional[str]:
        return self.meta.get("splitter")

    @property
    def fingerprint(self) -> str:
        return str(self.meta.get("splitter_fingerprint", "-"))

    def __len__(self) -> int:
        return self._count

    @property
    def gram_count(self) -> int:
        return self._gram_count

    @property
    def nbytes(self) -> int:
        return len(self._view)

    # -- text access ---------------------------------------------------

    def _text_bounds(self, tid: int) -> Tuple[int, int]:
        base = self._off_text_offsets + tid * _U64.size
        start = _U64.unpack_from(self._view, base)[0]
        end = _U64.unpack_from(self._view, base + _U64.size)[0]
        return start, end

    def text_bytes(self, tid: int) -> bytes:
        """The UTF-8 bytes of local text ``tid`` (owned copy)."""
        start, end = self._text_bounds(tid)
        return bytes(self._view[start:end])

    def text(self, tid: int) -> str:
        return self.text_bytes(tid).decode("utf-8")

    def texts(self) -> Iterable[str]:
        """Every indexed text, in local-id order (lazy)."""
        return (self.text(tid) for tid in range(self._count))

    def text_length(self, tid: int) -> int:
        """Character length of text ``tid`` (no decode)."""
        return _U32.unpack_from(
            self._view, self._off_text_lengths + tid * _U32.size
        )[0]

    def text_id(self, text: str) -> Optional[int]:
        """Local id of ``text``, by binary search over sorted bytes."""
        needle = text.encode("utf-8")
        low, high = 0, self._count
        while low < high:
            mid = (low + high) // 2
            start, end = self._text_bounds(mid)
            probe = bytes(self._view[start:end])
            if probe < needle:
                low = mid + 1
            elif probe > needle:
                high = mid
            else:
                return mid
        return None

    def digest_id(self, digest: bytes) -> Optional[int]:
        """Local id of the text with sha1 ``digest``, or ``None``."""
        low, high = 0, self._count
        base = self._off_digests
        while low < high:
            mid = (low + high) // 2
            probe, tid = _DIGEST.unpack_from(
                self._view, base + mid * _DIGEST.size
            )
            if probe < digest:
                low = mid + 1
            elif probe > digest:
                high = mid
            else:
                return tid
        return None

    # -- postings ------------------------------------------------------

    def _gram_bounds(self, gid: int) -> Tuple[int, int]:
        base = self._off_gram_offsets + gid * _U64.size
        start = _U64.unpack_from(self._view, base)[0]
        end = _U64.unpack_from(self._view, base + _U64.size)[0]
        return start, end

    def _find_gram(self, gram: str) -> Optional[int]:
        needle = gram.encode("utf-8")
        low, high = 0, self._gram_count
        while low < high:
            mid = (low + high) // 2
            start, end = self._gram_bounds(mid)
            probe = bytes(self._view[start:end])
            if probe < needle:
                low = mid + 1
            elif probe > needle:
                high = mid
            else:
                return mid
        return None

    def posting_mask(self, gram: str) -> int:
        """Bitmask over local ids of texts containing ``gram``.

        Decoded from the mapped payload on first touch (bitmap: one
        ``int.from_bytes``; varint: a delta walk), then memoized.
        """
        mask = self._masks.get(gram)
        if mask is None:
            gid = self._find_gram(gram)
            if gid is None:
                mask = 0
            else:
                entry = self._off_gram_entries + gid * _GRAM_ENTRY.size
                tag, offset, length = _GRAM_ENTRY.unpack_from(
                    self._view, entry
                )
                payload = self._view[offset:offset + length]
                if tag == TAG_BITMAP:
                    mask = int.from_bytes(bytes(payload), "little")
                elif tag == TAG_VARINT:
                    mask = 0
                    tid = 0
                    for index, delta in enumerate(
                        _decode_varints(payload)
                    ):
                        tid = delta if index == 0 else tid + delta
                        mask |= 1 << tid
                else:
                    raise IndexFormatError(
                        f"unknown posting encoding tag {tag}",
                        path=self.path,
                    )
            self._masks[gram] = mask
        return mask

    @property
    def short_mask(self) -> int:
        """Texts shorter than the gram width (trigram-OR exemption)."""
        if self._short_mask is None:
            size = (self._count + 7) // 8
            self._short_mask = int.from_bytes(
                bytes(self._view[self._off_short:self._off_short + size]),
                "little",
            )
        return self._short_mask

    def length_mask(self, min_length: int) -> int:
        """Bitmask of texts with at least ``min_length`` characters."""
        mask = self._length_masks.get(min_length)
        if mask is None:
            lengths = self._view[
                self._off_text_lengths:
                self._off_text_lengths + self._count * _U32.size
            ].cast("I")
            raw = bytearray((self._count + 7) // 8)
            for tid in range(self._count):
                if lengths[tid] >= min_length:
                    raw[tid >> 3] |= 1 << (tid & 7)
            lengths.release()
            mask = int.from_bytes(bytes(raw), "little")
            self._length_masks[min_length] = mask
        return mask

    def candidates(self, factors: FactorSet) -> Optional[int]:
        """Candidate bitmask over local ids (see
        :meth:`repro.index.trigram.CorpusIndex.candidates`; identical
        soundness semantics, answered from the mapping)."""
        count = self._count
        if count == 0:
            return None
        if factors.empty:
            return 0
        everything = (1 << count) - 1
        mask = everything
        useful = False
        for factor in factors.required:
            if len(factor) <= GRAM:
                mask &= self.posting_mask(factor)
            else:
                approximation = everything
                for start in range(len(factor) - GRAM + 1):
                    approximation &= self.posting_mask(
                        factor[start:start + GRAM]
                    )
                mask &= approximation
            useful = True
        if factors.trigrams is not None:
            union = self.short_mask
            for trigram in factors.trigrams:
                union |= self.posting_mask(trigram)
            mask &= union
            useful = True
        if factors.min_length > 0:
            length_mask = self.length_mask(factors.min_length)
            if length_mask != everything:
                mask &= length_mask
                useful = True
        return mask if useful else None

    # -- lifecycle -----------------------------------------------------

    def verify(self) -> None:
        """Full decode pass; raises :class:`IndexFormatError` on any
        internally inconsistent structure (used by tests and
        compaction, never on the open path)."""
        previous = b""
        for tid in range(self._count):
            raw = self.text_bytes(tid)
            if tid and raw <= previous:
                raise IndexFormatError(
                    f"text order violation at id {tid}", path=self.path
                )
            if len(raw.decode("utf-8")) != self.text_length(tid):
                raise IndexFormatError(
                    f"length table mismatch at id {tid}", path=self.path
                )
            previous = raw

    def close(self) -> None:
        """Release the mapping (idempotent)."""
        view = self.__dict__.get("_view")
        if view is not None:
            self._masks.clear()
            self._length_masks.clear()
            view.release()
            self._view = None  # type: ignore[assignment]
            self._mmap.close()
            self.__dict__["_view"] = None
        elif getattr(self, "_mmap", None) is not None \
                and not self._mmap.closed:
            self._mmap.close()

    @property
    def closed(self) -> bool:
        return self.__dict__.get("_view") is None

    def __enter__(self) -> "Segment":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # best-effort unmap
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:
        state = "closed" if self.closed else f"{self._count} texts"
        return f"Segment({os.path.basename(self.path)!r}, {state})"
