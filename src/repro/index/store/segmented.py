"""The :class:`SegmentedIndex`: many immutable segments, one index.

This is the binary storage engine's answer to
:class:`repro.index.trigram.CorpusIndex`: the same candidate-mask
contract (``candidates``/``text_id``/``version``/``splitter``), backed
not by an in-memory dict of postings but by a *directory* of
memory-mapped :class:`repro.index.store.segment.Segment` files plus a
small JSON manifest.  Text ids are global — segment *k*'s local ids
are offset by the number of texts in segments before it — so the
candidate bitmask the :class:`repro.index.filter.IndexFilter` consumes
is simply the OR of per-segment masks shifted to their bases.

Mutation follows the LSM discipline:

* **segments are immutable** — once written, a segment file is only
  ever mapped or unlinked;
* **additions** stage in memory and flush as a fresh *delta* segment
  (:meth:`flush`; bulk builds flush once per shard, document edits
  once per edit);
* **removals** are *tombstones*: a set of text digests recorded in the
  manifest.  Tombstones never touch candidate masks — clearing a bit
  claims "provably no match", which retirement cannot prove — they
  only make :meth:`text_id` answer ``None`` so retired texts fall back
  to the (sound) exact scan, and they make :meth:`compact` drop the
  payload;
* **compaction** (:meth:`compact`) merges every segment minus
  tombstoned texts into one fresh segment and unlinks the old files.
  POSIX unlink semantics keep concurrently mapped readers alive: an
  index opened before a compact keeps serving its old generation until
  it calls :meth:`refresh`.

Document-level delta maintenance (:meth:`update_document`) keeps a
sidecar (``documents.json``) of each document's chunk digests plus
per-digest reference counts; an edit stages only the chunk texts the
edit introduced and tombstones the ones whose last reference dropped —
re-indexing cost proportional to the edit, the Wikipedia-revision
scenario of the paper applied to the index itself.

Pickling is by *path*: workers receive ``(open, (directory,))`` and
re-map the segment files themselves, so posting payloads cross process
boundaries through the page cache, never through pickle.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.errors import IndexFormatError
from repro.index.factors import FactorSet
from repro.index.store.segment import (
    Segment,
    splitter_fingerprint,
    text_digest,
    write_segment,
)
from repro.obs.metrics import kernel_metrics

MANIFEST_NAME = "MANIFEST.json"
DOCUMENTS_NAME = "documents.json"
MANIFEST_FORMAT = "repro-segmented-index"
MANIFEST_VERSION = 1


def _atomic_write_json(path: str, payload: Dict[str, object]) -> None:
    temp = path + ".tmp"
    with open(temp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, ensure_ascii=False, sort_keys=True)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(temp, path)


class SegmentedIndex:
    """A directory of mmap-backed index segments with delta updates.

    Construct via :meth:`create` (new, empty), :meth:`open` (existing
    directory), or :meth:`build` (index a corpus).  All mutators
    persist before returning — the directory on disk is always a
    complete, openable index.
    """

    format = "binary-segments"

    def __init__(
        self,
        directory: str,
        splitter: Optional[str] = None,
        _from_factory: bool = False,
    ) -> None:
        if not _from_factory:
            raise TypeError(
                "use SegmentedIndex.create/open/build, not the "
                "constructor"
            )
        self.directory = directory
        self.splitter = splitter
        self.version = 0
        self.generation = 0
        self.documents = 0
        self.chunk_instances = 0
        self.shards_indexed = 0
        self._segments: List[Segment] = []
        self._segment_names: List[str] = []
        self._bases: List[int] = []
        self._next_segment = 1
        #: Staged (not yet flushed) distinct texts, insertion-ordered.
        self._staged: Dict[str, bool] = {}
        #: sha1 digests of retired texts (never prunes masks; see
        #: module docstring).
        self._tombstones: Set[bytes] = set()
        #: doc_id -> per-instance digest hexes; digest hex -> document
        #: reference count.  Loaded lazily from the sidecar.
        self._doc_records: Optional[Dict[str, List[str]]] = None
        self._refcounts: Optional[Dict[str, int]] = None
        self._autoflush = True

    # ------------------------------------------------------------------
    # Factories
    # ------------------------------------------------------------------

    @classmethod
    def create(
        cls, directory: str, splitter: Optional[str] = None
    ) -> "SegmentedIndex":
        """Initialize an empty index directory (must not already hold
        a manifest)."""
        os.makedirs(directory, exist_ok=True)
        manifest = os.path.join(directory, MANIFEST_NAME)
        if os.path.exists(manifest):
            raise IndexFormatError(
                "directory already holds an index (open it instead)",
                path=directory,
            )
        index = cls(directory, splitter=splitter, _from_factory=True)
        index._doc_records = {}
        index._refcounts = {}
        index._write_manifest()
        return index

    @classmethod
    def open(cls, directory: str) -> "SegmentedIndex":
        """Map an existing index directory (header-only parsing; cost
        is independent of index size)."""
        manifest_path = os.path.join(directory, MANIFEST_NAME)
        try:
            with open(manifest_path, encoding="utf-8") as handle:
                manifest = json.load(handle)
        except FileNotFoundError:
            raise IndexFormatError(
                "no index manifest (not a segmented index directory)",
                path=directory,
            ) from None
        except ValueError as error:
            raise IndexFormatError(
                f"unreadable index manifest ({error})", path=manifest_path
            ) from error
        if (not isinstance(manifest, dict)
                or manifest.get("format") != MANIFEST_FORMAT):
            raise IndexFormatError(
                "not a segmented-index manifest", path=manifest_path
            )
        if manifest.get("version") != MANIFEST_VERSION:
            raise IndexFormatError(
                "unsupported segmented-index version "
                f"{manifest.get('version')!r}", path=manifest_path,
            )
        index = cls(directory, splitter=manifest.get("splitter"),
                    _from_factory=True)
        index._load_manifest(manifest)
        metrics = kernel_metrics()
        metrics.counter("index.opens").inc()
        metrics.counter("index.segments_mapped").inc(
            len(index._segments)
        )
        metrics.counter("index.mapped_bytes").inc(
            sum(segment.nbytes for segment in index._segments)
        )
        return index

    @classmethod
    def build(
        cls,
        corpus,
        splitter,
        directory: str,
        name: Optional[str] = None,
        num_shards: int = 1,
    ) -> "SegmentedIndex":
        """Index every chunk of ``corpus`` into ``directory``.

        Mirrors :meth:`repro.index.trigram.CorpusIndex.build`; with
        ``num_shards > 1`` each shard flushes its own segment file, so
        the directory records the build's parallel structure and
        :meth:`compact` can later fold it flat.
        """
        from repro.engine.engine import _as_corpus

        corpus = _as_corpus(corpus)
        index = cls.create(
            directory,
            splitter=name or getattr(splitter, "name", None),
        )
        if num_shards <= 1:
            index.add_shard(corpus, splitter)
        else:
            for shard in corpus.shards(num_shards):
                index.add_shard(shard, splitter)
        return index

    def _load_manifest(self, manifest: Dict[str, object]) -> None:
        self.generation = int(manifest.get("generation", 0))
        self.documents = int(manifest.get("documents", 0))
        self.chunk_instances = int(manifest.get("chunk_instances", 0))
        self.shards_indexed = int(manifest.get("shards_indexed", 0))
        self._next_segment = int(manifest.get("next_segment", 1))
        self._tombstones = {
            bytes.fromhex(entry)
            for entry in manifest.get("tombstones", [])
        }
        expected = splitter_fingerprint(self.splitter)
        segments: List[Segment] = []
        names: List[str] = []
        try:
            for name in manifest.get("segments", []):
                segment = Segment(os.path.join(self.directory, name))
                if segment.fingerprint != expected:
                    segment.close()
                    raise IndexFormatError(
                        f"segment {name} was built under splitter "
                        f"fingerprint {segment.fingerprint}, manifest "
                        f"expects {expected}", path=self.directory,
                    )
                segments.append(segment)
                names.append(name)
        except Exception:
            for segment in segments:
                segment.close()
            raise
        self._segments = segments
        self._segment_names = names
        self._recompute_bases()
        self.version += 1

    def _recompute_bases(self) -> None:
        self._bases = []
        base = 0
        for segment in self._segments:
            self._bases.append(base)
            base += len(segment)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def _write_manifest(self) -> None:
        _atomic_write_json(
            os.path.join(self.directory, MANIFEST_NAME),
            {
                "format": MANIFEST_FORMAT,
                "version": MANIFEST_VERSION,
                "generation": self.generation,
                "splitter": self.splitter,
                "splitter_fingerprint":
                    splitter_fingerprint(self.splitter),
                "documents": self.documents,
                "chunk_instances": self.chunk_instances,
                "shards_indexed": self.shards_indexed,
                "segments": list(self._segment_names),
                "next_segment": self._next_segment,
                "tombstones": sorted(
                    digest.hex() for digest in self._tombstones
                ),
            },
        )

    def _load_documents(self) -> None:
        if self._doc_records is not None:
            return
        path = os.path.join(self.directory, DOCUMENTS_NAME)
        try:
            with open(path, encoding="utf-8") as handle:
                payload = json.load(handle)
        except FileNotFoundError:
            payload = {}
        except ValueError as error:
            raise IndexFormatError(
                f"unreadable documents sidecar ({error})", path=path
            ) from error
        self._doc_records = dict(payload.get("documents", {}))
        self._refcounts = {
            key: int(value)
            for key, value in payload.get("refcounts", {}).items()
        }

    def _write_documents(self) -> None:
        if self._doc_records is None:
            return
        _atomic_write_json(
            os.path.join(self.directory, DOCUMENTS_NAME),
            {"documents": self._doc_records,
             "refcounts": self._refcounts},
        )

    def save(self) -> None:
        """Flush staged texts and persist manifest + sidecar."""
        self.flush()
        self._write_manifest()
        self._write_documents()

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def batch(self):
        """Context manager suspending per-mutation persistence: all
        mutations inside stage together and flush as **one** segment
        (with one manifest write) on exit — the bulk-build and
        single-edit-delta discipline."""
        import contextlib

        @contextlib.contextmanager
        def _batched():
            previous, self._autoflush = self._autoflush, False
            try:
                yield self
            finally:
                self._autoflush = previous
            if self._autoflush:
                self.save()

        return _batched()

    def add_shard(self, corpus, splitter) -> int:
        """Index one corpus shard as one segment; returns distinct
        texts added."""
        from repro.index.trigram import CorpusIndex

        before = len(self)
        previous, self._autoflush = self._autoflush, False
        try:
            for document in corpus:
                self.add_document(
                    CorpusIndex._chunk_texts(splitter, document.text),
                    doc_id=getattr(document, "doc_id", None),
                )
        finally:
            self._autoflush = previous
        self.shards_indexed += 1
        if self._autoflush:
            self.save()
        return len(self) - before

    def add_document(
        self, chunk_texts: Iterable[str], doc_id: Optional[str] = None
    ) -> None:
        """Index one document's chunk texts.

        With a ``doc_id`` the document is *tracked*: a later
        :meth:`update_document` or :meth:`remove_document` with the
        same id maintains the index by delta.
        """
        texts = list(chunk_texts)
        self._load_documents()
        if doc_id is not None and doc_id in self._doc_records:
            self.update_document(doc_id, texts)
            return
        self.documents += 1
        self.chunk_instances += len(texts)
        hexes: List[str] = []
        for text in texts:
            hexes.append(self._reference(text))
        if doc_id is not None:
            self._doc_records[doc_id] = hexes
        self.version += 1
        if self._autoflush:
            self.save()

    def _reference(self, text: str) -> str:
        """Count one document reference to ``text``, staging it if the
        index has never (or no longer) stored it.  Returns the digest
        hex."""
        digest = text_digest(text)
        hexed = digest.hex()
        counts = self._refcounts
        counts[hexed] = counts.get(hexed, 0) + 1
        if digest in self._tombstones:
            # The payload is still in some segment; retiring is undone
            # by dropping the tombstone, no re-indexing needed.
            self._tombstones.discard(digest)
            self.version += 1
        elif (text not in self._staged
                and self._segment_text_id(text) is None):
            self._staged[text] = True
            self.version += 1
        return hexed

    def update_document(
        self, doc_id: str, chunk_texts: Iterable[str]
    ) -> Dict[str, int]:
        """Re-index one document after an edit, by delta.

        Diffs the new chunk digests against the recorded ones: only
        introduced texts are staged (flushed as a delta segment),
        texts whose last document reference disappeared are
        tombstoned.  Returns ``{"added": n, "removed": n}`` distinct-
        text counts (both 0 for a no-op edit).
        """
        texts = list(chunk_texts)
        self._load_documents()
        record = self._doc_records.get(doc_id)
        if record is None:
            self.add_document(texts, doc_id=doc_id)
            return {"added": len(set(texts)), "removed": 0}
        old_distinct = set(record)
        new_hexes = {text_digest(text).hex(): text for text in texts}
        added = [hexed for hexed in new_hexes if hexed not in old_distinct]
        removed = [hexed for hexed in old_distinct if hexed not in new_hexes]
        for hexed in added:
            self._reference(new_hexes[hexed])
        for hexed in removed:
            self._release(hexed)
        self.chunk_instances += len(texts) - len(record)
        self._doc_records[doc_id] = [
            text_digest(text).hex() for text in texts
        ]
        self.version += 1
        if self._autoflush:
            self.save()
        return {"added": len(added), "removed": len(removed)}

    def _release(self, hexed: str) -> None:
        counts = self._refcounts
        remaining = counts.get(hexed, 0) - 1
        if remaining > 0:
            counts[hexed] = remaining
            return
        counts.pop(hexed, None)
        digest = bytes.fromhex(hexed)
        # Last reference gone: retire.  Staged-and-unflushed texts are
        # simply dropped at flush; flushed ones get a tombstone.
        self._tombstones.add(digest)
        self.version += 1

    def remove_document(self, doc_id: str) -> int:
        """Forget a tracked document; returns distinct texts retired."""
        self._load_documents()
        record = self._doc_records.pop(doc_id, None)
        if record is None:
            raise KeyError(doc_id)
        before = len(self._tombstones)
        for hexed in set(record):
            self._release(hexed)
        self.documents -= 1
        self.chunk_instances -= len(record)
        self.version += 1
        if self._autoflush:
            self.save()
        return len(self._tombstones) - before

    def flush(self) -> Optional[str]:
        """Write staged texts as one fresh (delta) segment; returns
        the new segment's filename, or ``None`` if nothing to write."""
        texts = [
            text for text in self._staged
            if text_digest(text) not in self._tombstones
        ]
        if not texts:
            self._staged.clear()
            return None
        name = f"segment-{self._next_segment:06d}.ris"
        self._next_segment += 1
        write_segment(
            os.path.join(self.directory, name),
            texts,
            splitter=self.splitter,
        )
        self._staged.clear()
        segment = Segment(os.path.join(self.directory, name))
        self._segments.append(segment)
        self._segment_names.append(name)
        self._recompute_bases()
        self.generation += 1
        self.version += 1
        self._write_manifest()
        return name

    def compact(self) -> Dict[str, int]:
        """Merge all segments, dropping tombstoned texts, into one.

        Old segment files are unlinked after the new manifest lands;
        readers that mapped them before the compact keep working (the
        inode lives until their last close) and pick up the new
        generation on :meth:`refresh`.  Returns a summary dict.
        """
        self.flush()
        before_segments = len(self._segments)
        before_tombstones = len(self._tombstones)

        def _live_texts() -> Iterator[str]:
            seen: Set[bytes] = set(self._tombstones)
            for segment in self._segments:
                for tid in range(len(segment)):
                    raw = segment.text_bytes(tid)
                    digest = text_digest(raw.decode("utf-8"))
                    if digest in seen:
                        continue
                    seen.add(digest)
                    yield raw.decode("utf-8")

        name = f"segment-{self._next_segment:06d}.ris"
        self._next_segment += 1
        summary = write_segment(
            os.path.join(self.directory, name),
            _live_texts(),
            splitter=self.splitter,
        )
        old_segments = self._segments
        old_names = self._segment_names
        self._segments = [Segment(os.path.join(self.directory, name))]
        self._segment_names = [name]
        self._recompute_bases()
        self._tombstones.clear()
        self.generation += 1
        self.version += 1
        self._write_manifest()
        self._write_documents()
        for segment, old_name in zip(old_segments, old_names):
            segment.close()
            try:
                os.unlink(os.path.join(self.directory, old_name))
            except FileNotFoundError:
                pass
        kernel_metrics().counter("index.compactions").inc()
        from repro.obs.log import event_log

        event_log().emit(
            "index.compact", directory=self.directory,
            segments_merged=before_segments,
            tombstones_dropped=before_tombstones,
            texts=summary["texts"], bytes=summary["bytes"],
            generation=self.generation,
        )
        return {
            "segments_merged": before_segments,
            "tombstones_dropped": before_tombstones,
            "texts": summary["texts"],
            "bytes": summary["bytes"],
        }

    def refresh(self) -> bool:
        """Re-open if the directory advanced to a new generation
        (another process flushed or compacted).  Returns whether
        anything changed; the index keeps serving throughout."""
        manifest_path = os.path.join(self.directory, MANIFEST_NAME)
        try:
            with open(manifest_path, encoding="utf-8") as handle:
                manifest = json.load(handle)
        except (FileNotFoundError, ValueError):
            return False
        if int(manifest.get("generation", 0)) == self.generation:
            return False
        old_segments = self._segments
        self._segments = []
        self._segment_names = []
        self.splitter = manifest.get("splitter")
        self._load_manifest(manifest)
        self._doc_records = None
        self._refcounts = None
        for segment in old_segments:
            segment.close()
        from repro.obs.log import event_log

        event_log().emit(
            "index.refresh", directory=self.directory,
            generation=self.generation,
            segments=len(self._segments),
        )
        return True

    # ------------------------------------------------------------------
    # Queries (the IndexFilter contract)
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return (sum(len(segment) for segment in self._segments)
                + len(self._staged))

    def __contains__(self, text: str) -> bool:
        return self.text_id(text) is not None

    @property
    def segment_count(self) -> int:
        return len(self._segments)

    def gram_count(self) -> int:
        return sum(segment.gram_count for segment in self._segments)

    @property
    def tombstone_count(self) -> int:
        return len(self._tombstones)

    def _segment_text_id(self, text: str) -> Optional[int]:
        for segment, base in zip(self._segments, self._bases):
            local = segment.text_id(text)
            if local is not None:
                return base + local
        return None

    def text_id(self, text: str) -> Optional[int]:
        """Global id of an indexed chunk text, or ``None``.

        Tombstoned and merely-staged texts answer ``None``: the filter
        then scans them exactly, which is sound regardless of what the
        masks say about other texts.
        """
        if text_digest(text) in self._tombstones:
            return None
        return self._segment_text_id(text)

    def candidates(self, factors: FactorSet) -> Optional[int]:
        """Global candidate bitmask (per-segment masks shifted to
        their bases).  Semantics identical to
        :meth:`repro.index.trigram.CorpusIndex.candidates`."""
        if not self._segments:
            return None
        masks: List[Optional[int]] = [
            segment.candidates(factors) for segment in self._segments
        ]
        if all(mask is None for mask in masks):
            return None
        combined = 0
        for segment, base, mask in zip(self._segments, self._bases,
                                       masks):
            if mask is None:
                # This segment had no answerable condition (e.g. its
                # every text passes the length bound): admit it whole.
                mask = (1 << len(segment)) - 1
            combined |= mask << base
        return combined

    def texts(self) -> Iterator[str]:
        """Every queryable (non-tombstoned, flushed) text, in global
        id order."""
        for segment in self._segments:
            for tid in range(len(segment)):
                text = segment.text(tid)
                if text_digest(text) not in self._tombstones:
                    yield text

    def describe(self) -> Dict[str, object]:
        """Summary counters (the CLI's build/compact report)."""
        return {
            "format": self.format,
            "splitter": self.splitter,
            "directory": self.directory,
            "generation": self.generation,
            "documents": self.documents,
            "chunk_instances": self.chunk_instances,
            "distinct_texts": len(self),
            "segments": self.segment_count,
            "tombstones": len(self._tombstones),
            "staged_texts": len(self._staged),
            "shards_indexed": self.shards_indexed,
            "mapped_bytes": sum(
                segment.nbytes for segment in self._segments
            ),
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Unmap every segment (idempotent; queries then see an empty
        index)."""
        for segment in self._segments:
            segment.close()
        self._segments = []
        self._segment_names = []
        self._bases = []

    def __enter__(self) -> "SegmentedIndex":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __reduce__(self) -> Tuple[object, Tuple[str]]:
        # Pickle as a path: workers re-map the segments through the
        # page cache instead of receiving serialized postings.
        return (SegmentedIndex.open, (self.directory,))

    def __repr__(self) -> str:
        return (f"SegmentedIndex({self.directory!r}, "
                f"{self.segment_count} segments, {len(self)} texts, "
                f"generation={self.generation})")
