"""Necessary-factor extraction: what every matching chunk must contain.

A split-correct plan evaluates the chunk spanner on every chunk — but
most chunks of a real corpus cannot match a selective program at all.
This module derives, from a spanner's *matching language*
``L_P = {d : P(d) != {}}`` (Section 7.2's minimal filter language), a
:class:`FactorSet` of **necessary conditions** on matching chunks:

* ``required`` — literal substrings every matching chunk contains
  (an AND-filter, the Google-Code-Search "necessary literals" trick);
* ``trigrams`` — a set such that every matching chunk of length >= 3
  contains at least one member (an OR-filter answerable from a
  trigram posting index, :mod:`repro.index.trigram`);
* ``min_length`` — the length of the shortest matching chunk;
* ``empty`` — the matching language is empty (nothing ever matches).

A chunk failing any condition provably produces no tuples, so the
engine can skip the automaton entirely (:class:`repro.index.filter.
IndexFilter`).  Chunks containing symbols outside the document
alphabet are always admitted so they surface the same evaluation-time
error an unfiltered run would raise.

Extraction runs two cooperating analyses:

* **Regex-formula analysis** — when the spanner remembers the formula
  AST it was compiled from (:func:`repro.spanners.regex_formulas.
  compile_regex_formula` attaches it), contiguous literal runs of the
  AST are collected as *candidate* factors (precise long literals,
  e.g. ``"qz"`` out of ``y{qz+}``).
* **NFA-path analysis** — candidates (and single letters) are
  *verified* against the matching NFA: a factor ``w`` is necessary iff
  no accepting path avoids it, decided by emptiness of the product
  with the KMP avoid-``w`` automaton.  Verified factors are greedily
  extended letter by letter, so automata without an AST (canonical
  split-spanners, algebra results) still yield maximal literals.
  The same NFA enumerates realizable trigram factors and the shortest
  accepted word.

Everything here is *sound but not complete*: analysis may miss
prunable chunks (returning a weaker :class:`FactorSet`, in the limit
an ineffective one), but a chunk it rejects can never match.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.automata.nfa import EPSILON, NFA

#: Factor length answerable from the posting index (Code Search's 3).
GRAM = 3

#: Ceiling on verified required-factor length (longer adds little).
_MAX_FACTOR_LENGTH = 8

#: How many required factors a FactorSet keeps (longest first).
_MAX_REQUIRED = 4

#: Candidate literals taken from a formula AST before verification.
_MAX_CANDIDATES = 16

#: Trigram sets larger than this are discarded as non-selective.
_MAX_TRIGRAMS = 256

#: Ceiling on (state, prefix) pairs during trigram enumeration.
_TRIGRAM_WORK_LIMIT = 50_000

#: Ceiling on NFA necessity checks per analysis.
_NECESSITY_BUDGET = 160


@dataclass(frozen=True)
class FactorSet:
    """Necessary conditions on chunks that can produce tuples.

    Soundness contract: for any chunk text over ``alphabet``,
    ``admits(text) is False`` implies the spanner's result on that
    text is empty.  Texts with out-of-alphabet symbols are always
    admitted (their evaluation-time error must not be masked).
    """

    alphabet: FrozenSet[str]
    #: AND: every matching chunk contains each of these substrings.
    required: Tuple[str, ...] = ()
    #: OR: every matching chunk of length >= GRAM contains one of
    #: these; ``None`` when the trigram abstraction is unavailable or
    #: too dense to be selective.
    trigrams: Optional[FrozenSet[str]] = None
    #: Length of the shortest matching chunk.
    min_length: int = 0
    #: The matching language is empty: no chunk ever matches.
    empty: bool = False

    @property
    def effective(self) -> bool:
        """Whether this factor set can prune anything at all."""
        return (self.empty or bool(self.required)
                or self.trigrams is not None or self.min_length > 1)

    def admits(self, text: str) -> bool:
        """Whether ``text`` could possibly match (False = safe skip)."""
        if not self.alphabet.issuperset(text):
            # Out-of-alphabet chunks keep their evaluation-time error.
            return True
        if self.empty or len(text) < self.min_length:
            return False
        for factor in self.required:
            if factor not in text:
                return False
        if self.trigrams is not None and len(text) >= GRAM:
            trigrams = self.trigrams
            if not any(text[i:i + GRAM] in trigrams
                       for i in range(len(text) - GRAM + 1)):
                return False
        return True

    def describe(self) -> Dict[str, object]:
        """A flat report for ``explain()`` surfaces and the CLI."""
        return {
            "required": list(self.required),
            "trigram_count": (len(self.trigrams)
                              if self.trigrams is not None else None),
            "min_length": self.min_length,
            "empty_language": self.empty,
            "effective": self.effective,
        }


# ----------------------------------------------------------------------
# Matching-NFA scaffolding
# ----------------------------------------------------------------------


class _MatchGraph:
    """Letter/epsilon adjacency of a trimmed matching NFA.

    All analyses below run over this one flattened view: per-state
    epsilon successors and ``(letter, target)`` edges, plus the
    forward epsilon closure (memoized), so no analysis touches the
    NFA's nested dict-of-sets tables in its inner loop.
    """

    def __init__(self, nfa: NFA) -> None:
        self.initial = nfa.initial
        self.finals = set(nfa.finals)
        self.states = set(nfa.states)
        self.letter_edges: Dict[object, List[Tuple[str, object]]] = {
            state: [] for state in self.states
        }
        self.eps_edges: Dict[object, List[object]] = {
            state: [] for state in self.states
        }
        for source, symbol, target in nfa.transitions():
            if symbol is EPSILON:
                self.eps_edges[source].append(target)
            else:
                self.letter_edges[source].append((symbol, target))
        self._closures: Dict[object, FrozenSet[object]] = {}

    def closure(self, state: object) -> FrozenSet[object]:
        cached = self._closures.get(state)
        if cached is None:
            seen = {state}
            stack = [state]
            while stack:
                for target in self.eps_edges[stack.pop()]:
                    if target not in seen:
                        seen.add(target)
                        stack.append(target)
            cached = frozenset(seen)
            self._closures[state] = cached
        return cached

    def language_empty(self) -> bool:
        """No accepting state is reachable (matching language empty)."""
        seen = {self.initial}
        stack = [self.initial]
        while stack:
            state = stack.pop()
            if state in self.finals:
                return False
            for target in self.eps_edges[state]:
                if target not in seen:
                    seen.add(target)
                    stack.append(target)
            for _symbol, target in self.letter_edges[state]:
                if target not in seen:
                    seen.add(target)
                    stack.append(target)
        return True

    def shortest_accepted_length(self) -> int:
        """Length of the shortest accepted word (0-1 BFS; the language
        must be non-empty)."""
        distance = {self.initial: 0}
        queue = deque([self.initial])
        best: Optional[int] = None
        while queue:
            state = queue.popleft()
            here = distance[state]
            if best is not None and here >= best:
                continue
            if state in self.finals:
                best = here if best is None else min(best, here)
                continue
            for target in self.eps_edges[state]:
                if distance.get(target, here + 1) > here:
                    distance[target] = here
                    queue.appendleft(target)
            for _symbol, target in self.letter_edges[state]:
                if distance.get(target, here + 2) > here + 1:
                    distance[target] = here + 1
                    queue.append(target)
        return best if best is not None else 0


def _kmp_table(pattern: str) -> List[int]:
    """KMP failure table: longest proper prefix-suffix per position."""
    table = [0] * len(pattern)
    matched = 0
    for index in range(1, len(pattern)):
        while matched and pattern[index] != pattern[matched]:
            matched = table[matched - 1]
        if pattern[index] == pattern[matched]:
            matched += 1
        table[index] = matched
    return table


def _is_necessary(graph: _MatchGraph, factor: str) -> bool:
    """Does every accepted word contain ``factor`` as a substring?

    Product of the matching NFA with the KMP avoid-automaton of
    ``factor``: states ``(q, k)`` where ``k < len(factor)`` letters of
    the factor are currently matched.  If an accepting NFA state is
    reachable while avoiding ``k == len(factor)``, some accepted word
    lacks the factor and it is not necessary.
    """
    if not factor:
        return False
    table = _kmp_table(factor)
    length = len(factor)
    start = (graph.initial, 0)
    seen = {start}
    stack = [start]
    while stack:
        state, matched = stack.pop()
        if state in graph.finals:
            return False
        for target in graph.eps_edges[state]:
            item = (target, matched)
            if item not in seen:
                seen.add(item)
                stack.append(item)
        for symbol, target in graph.letter_edges[state]:
            advanced = matched
            while advanced and factor[advanced] != symbol:
                advanced = table[advanced - 1]
            if factor[advanced] == symbol:
                advanced += 1
            if advanced == length:
                continue  # this path contains the factor: not avoiding
            item = (target, advanced)
            if item not in seen:
                seen.add(item)
                stack.append(item)
    return True


def _realizable_trigrams(
    graph: _MatchGraph, alphabet: FrozenSet[str]
) -> Optional[FrozenSet[str]]:
    """All length-``GRAM`` factors of words of the matching language.

    The NFA is trimmed (every state lies on some accepting path), so
    the factors of length 3 are exactly the labels of 3-letter paths —
    from any state, with epsilon moves interleaved.  Returns ``None``
    when enumeration exceeds the work limit or the resulting set is
    too dense to be selective.
    """
    frontier: Set[Tuple[object, str]] = {
        (state, "") for state in graph.states
    }
    for _ in range(GRAM):
        advanced: Set[Tuple[object, str]] = set()
        for state, prefix in frontier:
            for mid in graph.closure(state):
                for symbol, target in graph.letter_edges[mid]:
                    advanced.add((target, prefix + symbol))
                    if len(advanced) > _TRIGRAM_WORK_LIMIT:
                        return None
        frontier = advanced
    trigrams = {prefix for _state, prefix in frontier}
    if len(trigrams) > _MAX_TRIGRAMS:
        return None
    # A saturated set (every trigram over the alphabet) filters nothing.
    if len(trigrams) >= len(alphabet) ** GRAM:
        return None
    return frozenset(trigrams)


# ----------------------------------------------------------------------
# Candidate literals from regex-formula ASTs
# ----------------------------------------------------------------------


@dataclass
class _Runs:
    """Contiguous literal runs of one AST node.

    ``whole`` is the exact literal word when the node denotes a single
    word (``None`` otherwise — unions, stars and wildcards are never
    exact); ``prefix``/``suffix`` are the literal runs touching the
    node's edges (used to bridge runs across concatenation); ``inner``
    collects completed runs.  Candidates only — the NFA verifies.
    """

    prefix: str = ""
    suffix: str = ""
    whole: Optional[str] = None
    inner: Set[str] = field(default_factory=set)

    def loose(self) -> Set[str]:
        """Every literal run this node exhibits anywhere."""
        runs = set(self.inner)
        for run in (self.prefix, self.suffix, self.whole):
            if run:
                runs.add(run)
        return runs


def _formula_runs(node: object) -> _Runs:
    from repro.automata.regex import (
        AnySymbol,
        Concat,
        Empty,
        Epsilon,
        Literal,
        Star,
        Union_,
    )
    from repro.spanners.regex_formulas import Capture

    if isinstance(node, Literal) and isinstance(node.symbol, str):
        return _Runs(node.symbol, node.symbol, node.symbol)
    if isinstance(node, (Epsilon, Empty)):
        return _Runs(whole="")
    if isinstance(node, Capture):
        return _formula_runs(node.inner)
    if isinstance(node, Concat):
        left = _formula_runs(node.left)
        right = _formula_runs(node.right)
        merged = _Runs(inner=left.inner | right.inner)
        bridge = left.suffix + right.prefix
        if left.whole is not None and right.whole is not None:
            merged.whole = left.whole + right.whole
            merged.prefix = merged.suffix = merged.whole
        else:
            merged.whole = None
            merged.prefix = (left.whole + right.prefix
                             if left.whole is not None else left.prefix)
            merged.suffix = (left.suffix + right.whole
                             if right.whole is not None else right.suffix)
            if bridge:
                merged.inner.add(bridge)
        return merged
    if isinstance(node, Union_):
        left = _formula_runs(node.left)
        right = _formula_runs(node.right)
        return _Runs(inner=left.loose() | right.loose())
    if isinstance(node, Star):
        return _Runs(inner=_formula_runs(node.inner).loose())
    # AnySymbol, non-string literals, unknown nodes: break every run.
    if isinstance(node, AnySymbol):
        return _Runs(whole=None)
    return _Runs(whole=None)


def formula_candidates(node: object) -> List[str]:
    """Candidate literal factors harvested from a regex-formula AST.

    Longest first, capped; single letters are omitted (the NFA letter
    scan already proposes those).  Purely heuristic — every candidate
    is verified against the matching NFA before use.
    """
    runs = sorted(
        (run for run in _formula_runs(node).loose() if len(run) > 1),
        key=lambda run: (-len(run), run),
    )
    return runs[:_MAX_CANDIDATES]


# ----------------------------------------------------------------------
# The analysis entry point
# ----------------------------------------------------------------------


def _dedupe_required(factors: Iterable[str]) -> Tuple[str, ...]:
    """Keep the longest factors, dropping substrings of kept ones."""
    kept: List[str] = []
    for factor in sorted(set(factors), key=lambda f: (-len(f), f)):
        if any(factor in other for other in kept):
            continue
        kept.append(factor)
        if len(kept) == _MAX_REQUIRED:
            break
    return tuple(kept)


def factors_of(
    spanner: object,
    max_trigrams: int = _MAX_TRIGRAMS,
) -> Optional[FactorSet]:
    """The :class:`FactorSet` of a spanner, or ``None`` when the
    analysis does not apply (non-character alphabet, missing
    specification, analysis failure).

    ``spanner`` is a :class:`repro.spanners.vset_automaton.
    VSetAutomaton`; the factors constrain the *matching language*
    ``{d : spanner(d) != {}}``, so they are valid skip conditions for
    whatever executable implements that specification.
    """
    from repro.spanners.vset_automaton import VSetAutomaton

    if not isinstance(spanner, VSetAutomaton):
        return None
    alphabet = spanner.doc_alphabet
    if not alphabet or not all(
        isinstance(symbol, str) and len(symbol) == 1 for symbol in alphabet
    ):
        return None
    try:
        graph = _MatchGraph(spanner.match_language())
    except Exception:
        return None
    if graph.language_empty():
        return FactorSet(alphabet, empty=True)

    budget = [_NECESSITY_BUDGET]

    def necessary(factor: str) -> bool:
        if budget[0] <= 0:
            return False
        budget[0] -= 1
        return _is_necessary(graph, factor)

    # Seed factors: verified AST candidates (longest first), then the
    # necessary single letters not already covered by one of them.
    verified: List[str] = []
    formula = getattr(spanner, "formula", None)
    if formula is not None:
        for candidate in formula_candidates(formula):
            if len(candidate) > _MAX_FACTOR_LENGTH:
                candidate = candidate[:_MAX_FACTOR_LENGTH]
            if any(candidate in kept for kept in verified):
                continue
            if necessary(candidate):
                verified.append(candidate)
    for letter in sorted(alphabet):
        if any(letter in kept for kept in verified):
            continue
        if necessary(letter):
            verified.append(letter)

    # Greedy maximal extension along NFA paths: grow each verified
    # factor one letter at a time while it stays necessary.
    extended: List[str] = []
    for factor in verified:
        grown = True
        while grown and len(factor) < _MAX_FACTOR_LENGTH and budget[0] > 0:
            grown = False
            for letter in sorted(alphabet):
                if necessary(factor + letter):
                    factor = factor + letter
                    grown = True
                    break
            if not grown:
                for letter in sorted(alphabet):
                    if necessary(letter + factor):
                        factor = letter + factor
                        grown = True
                        break
        extended.append(factor)

    trigrams = _realizable_trigrams(graph, alphabet)
    if trigrams is not None and len(trigrams) > max_trigrams:
        trigrams = None
    return FactorSet(
        alphabet,
        required=_dedupe_required(extended),
        trigrams=trigrams,
        min_length=graph.shortest_accepted_length(),
    )
