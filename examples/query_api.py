"""The fluent query API, end to end: regex -> tokens -> explain -> stream.

The paper's declarative pitch in five lines: wrap a regex formula in a
:class:`repro.Spanner`, pick a splitter by name, and let ``Q(...)``
certify split-correctness (once, via the plan cache), compile the
plan, and stream per-document results lazily off the corpus engine.

Run with:  python examples/query_api.py
"""

from repro import Q, Spanner, Splitter, UnknownSplitterError


def main() -> None:
    # Documents over a miniature prose alphabet: 'a'/'b' letters,
    # spaces between tokens, periods ending sentences.
    alphabet = "ab ."

    # The extractor: maximal runs of 'a' delimited by token boundaries
    # — "person-name tokens" in miniature.  Operators compose spanners
    # before anything is certified or executed.
    names = Spanner.regex(
        ".*( )y{a+}( ).*|y{a+}( ).*|.*( )y{a+}|y{a+}", alphabet,
        name="a-runs",
    )

    corpus = [
        "aa ab ba aa.",
        "aa ab ba aa.",      # exact duplicate: the chunk cache sees it
        "b a ab aaa.",
        "aaa aa b.",
    ]

    print("== The query ==")
    query = Q(names).split_by("tokens", "sentences").batch_size(2)
    print(f"spanner:   {names}")
    print(f"splitters: {[s.name for s in query.splitters]}")

    print()
    print("== Explain (certified once, before any document runs) ==")
    explain = query.explain()
    for key in ("mode", "splitter", "self_splittable", "theorem",
                "procedure", "certificate"):
        print(f"  {key}: {explain[key]}")

    print()
    print("== Streaming results (lazy, batch by batch) ==")
    results = query.over(corpus)
    for doc_id, tuples in results.stream():
        extracted = sorted(
            span.extract(corpus[int(doc_id.split('-')[1])])
            for t in tuples for span in t.values()
        )
        print(f"  {doc_id}: {len(tuples)} tuples -> {extracted}")

    print()
    print("== Run report ==")
    report = results.explain()
    stats = report["stats"]
    engine_stats = query.engine().stats()
    print(f"  certifications:   {engine_stats.certifications} "
          "(the PSPACE procedure ran exactly once, at explain time)")
    print(f"  compiled artifact: {report['compiled_artifact']}")
    print(f"  chunk hit rate:   {stats['chunk_hit_rate']:.2f} "
          "(duplicate documents cost nothing)")
    print(f"  tuples emitted:   {stats['tuples_emitted']}")

    print()
    print("== Materializers ==")
    print(f"  texts: {sorted(set(results.texts()))}")
    first_row = results.to_dicts()[0]
    print(f"  first row: {first_row}")

    print()
    print("== Typed errors ==")
    try:
        Splitter.named("tokns", alphabet)
    except UnknownSplitterError as error:
        print(f"  UnknownSplitterError: {error}")


if __name__ == "__main__":
    main()
