"""The introspection layer, end to end: a flight-recorded service, a
structured event log, a forced deadline miss landing in the slow-query
log with its span tree, and a sampling profile of the run.

:class:`repro.obs.FlightRecorder` rides along with
:class:`repro.ExtractionService`: every completed query leaves a
:class:`repro.obs.QueryRecord` (queue wait, run time, per-phase
durations, engine counters, kernel tier, outcome) in a bounded ring,
and anything slow — or any deadline miss — is additionally kept in an
always-retained slow log with its full span tree and ``explain()``
payload.  The structured event log mirrors the same lifecycle as one
JSON object per line on any stdlib logging handler, and
:func:`repro.obs.profile_for` samples wall-clock stacks per thread
role while queries run.

The same data is live over HTTP when serving:
``repro serve --flight 256 --slow-ms 250 --log events.jsonl`` exposes
``/debug/queries``, ``/debug/slow``, ``/debug/inflight`` and
``/debug/profile?seconds=1``.

Run with:  python examples/flight_recorder_run.py
"""

import io
import json
import time

from repro import DeadlineExceededError, ExtractionEngine, ExtractionService, Program
from repro.obs import FlightRecorder, configure_event_log, event_log, profile_for
from repro.runtime import FastSeparatorSplitter, RegisteredSplitter
from repro.spanners.regex_formulas import compile_regex_formula
from repro.splitters.builders import token_splitter

ALPHABET = frozenset("ab .")
PATTERN = (".*(\\.| )y{a+}(\\.| ).*|y{a+}(\\.| ).*"
           "|.*(\\.| )y{a+}|y{a+}")


class SlowSpanner:
    """Every chunk takes 30 ms — enough to blow a 100 ms deadline."""

    def __init__(self, specification, delay=0.03):
        self.specification = specification
        self.delay = delay

    def evaluate(self, text):
        time.sleep(self.delay)
        return set(self.specification.evaluate(text))


def build_service() -> ExtractionService:
    splitters = [
        RegisteredSplitter("tokens", token_splitter(ALPHABET), priority=1,
                           executor=FastSeparatorSplitter(" ")),
    ]
    engine = ExtractionEngine(splitters, batch_size=2)
    program = Program(SlowSpanner(compile_regex_formula(PATTERN, ALPHABET)),
                      name="slow-a-runs")
    flight = FlightRecorder(capacity=64, slow_threshold=0.25)
    return ExtractionService(engine, program=program, max_queue=8,
                             flight=flight)


def main() -> None:
    # Structured event log: one JSON object per line.  Point it at a
    # file with configure_event_log(path=...); a StringIO keeps the
    # example self-contained.
    sink = io.StringIO()
    handler = configure_event_log(stream=sink)

    docs = ["aa ab a.", "ab ab aa.", "aa ab a.", "b aa b"]

    with build_service() as service:
        print("== A recorded query ==")
        result = service.extract(docs, tenant="demo")
        record = result.record
        print(f"query {record.query_id}: {record.tuples} tuples in "
              f"{record.run_seconds * 1e3:.0f}ms "
              f"(kernel tier {record.kernel_tier})")
        print("phases:", {name: f"{seconds * 1e3:.0f}ms"
                          for name, seconds in record.phases.items()})

        print("\n== A forced deadline miss ==")
        # Unique tokens defeat the chunk cache, so the 30 ms/chunk
        # spanner cannot finish 30 chunks inside 100 ms.
        heavy = [" ".join("a" * (3 * i + j + 1) for j in range(3))
                 for i in range(10)]
        try:
            service.extract(heavy, tenant="demo", deadline=0.1)
        except DeadlineExceededError as error:
            print("missed as expected:", error)

        (slow,) = [r for r in service.slow_queries()
                   if r["outcome"] == "DeadlineExceededError"]
        print(f"slow log kept {slow['query_id']}: "
              f"budget {slow['deadline_budget']}s, "
              f"phases {list(slow['phases'])}, "
              f"span tree of {len(slow['span_tree'])} spans")

        print("\n== The service is still healthy ==")
        again = service.extract(docs, tenant="demo")
        print(f"follow-up query ok: {again.total_tuples} tuples; "
              f"tenant stats {service.tenant_stats('demo')}")

        print("\n== Sampling profile (0.3 s at 97 Hz) ==")
        profiler = profile_for(0.3, current_query=service.current_query_id)
        stats = profiler.stats()
        print(f"{stats['samples']} samples, "
              f"{stats['distinct_stacks']} distinct stacks, "
              f"roles {profiler.by_role()}")

        print("\n== Live view ==")
        inflight = service.inflight()
        print(f"queue depth {inflight['queue_depth']}, "
              f"flight {inflight['flight']['retained']} recent / "
              f"{inflight['flight']['slow_retained']} slow")

    event_log().detach(handler)
    lines = [json.loads(line) for line in sink.getvalue().splitlines()]
    print(f"\n== Event log ({len(lines)} JSON lines) ==")
    for line in lines:
        if line["event"].startswith("service."):
            extra = {key: value for key, value in line.items()
                     if key not in ("ts", "mono", "pid", "level", "event")}
            print(f"  {line['level']:<8} {line['event']:<22} {extra}")


if __name__ == "__main__":
    main()
