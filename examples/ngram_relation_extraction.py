"""N-gram windows and black-box joins (Sections 3.1 and 7.1).

Two parts:

1. The window-size threshold: an extractor pairing an email-like token
   (``a``) with a phone-like token (``b``) at distance at most one is
   self-splittable by N-gram windows exactly for N >= 3 — the paper's
   email/phone example in miniature (their tokens+gap needed N >= 5).

2. Black-box joins: a regular pattern joined with an opaque Python
   "classifier" that is only known to be self-splittable by tokens;
   Theorem 7.4 certifies the joint split plan, which is then executed
   chunk-by-chunk.

Run with:  python examples/ngram_relation_extraction.py
"""

import re

from repro import (
    BlackBoxSpanner,
    SpannerSignature,
    SpannerSymbol,
    SplitConstraint,
    black_box_split_correct,
    char_ngram_splitter,
    compile_regex_formula,
    is_disjoint,
    is_self_splittable,
    token_splitter,
)
from repro.core.black_box import evaluate_join, evaluate_join_split
from repro.core.spans import Span


def window_threshold() -> None:
    alphabet = frozenset("ab")
    pair = compile_regex_formula(
        ".*e{a}(.?)p{b}.*|e{a}(.?)p{b}.*|.*e{a}(.?)p{b}|e{a}(.?)p{b}",
        alphabet,
    )
    print("== N-gram window threshold ==")
    for n in (2, 3, 4):
        windows = char_ngram_splitter(alphabet, n,
                                      include_short_documents=True)
        print(f"  {n}-grams: disjoint={is_disjoint(windows)}, "
              f"self-splittable={is_self_splittable(pair, windows)}")


def black_box_join() -> None:
    alphabet = frozenset("ab .")
    # Regular part: token-delimited a-runs.
    alpha = compile_regex_formula(
        ".*( )x{a+}( ).*|x{a+}( ).*|.*( )x{a+}|x{a+}", alphabet
    )

    # Opaque part: "a machine-learned classifier" accepting only
    # even-length tokens — we cannot analyze it, but its authors promise
    # it never looks beyond a token (the split constraint).
    def even_length_tokens(document):
        return [
            {"x": Span(m.start() + 1, m.end() + 1)}
            for m in re.finditer(r"(?<![^ ])a+(?![^ ])", document)
            if (m.end() - m.start()) % 2 == 0
        ]

    classifier = BlackBoxSpanner("even-classifier", ["x"],
                                 even_length_tokens)
    signature = SpannerSignature(
        (SpannerSymbol("even-classifier", frozenset(["x"])),)
    )
    tokens = token_splitter(alphabet)
    constraints = [SplitConstraint(signature.symbols[0], tokens)]

    verdict = black_box_split_correct(alpha, signature, constraints, tokens)
    print("\n== Black-box join (Theorem 7.4) ==")
    print(f"  joint plan certified splittable by tokens: {verdict}")

    document = "aa b aaa aaaa. aa"
    direct = evaluate_join(alpha, [classifier], document)
    split = evaluate_join_split(alpha, [classifier], tokens, document)
    print(f"  direct evaluation:  {sorted(direct, key=repr)}")
    print(f"  chunk-wise (equal): {direct == split}")


if __name__ == "__main__":
    window_threshold()
    black_box_join()
