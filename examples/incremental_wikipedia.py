"""Incremental maintenance on edits (Introduction's Wikipedia model).

A split-correct extractor only needs re-evaluation on revised segments
when a large document receives a small edit.  The example builds a
multi-sentence "article", evaluates, applies an edit to one sentence,
and shows that only that sentence is re-processed.

Run with:  python examples/incremental_wikipedia.py
"""

from repro import compile_regex_formula, sentence_splitter
from repro.runtime import FastSentenceSplitter, IncrementalExtractor


def main() -> None:
    alphabet = frozenset("ab .")
    extractor = compile_regex_formula(
        ".*(\\.| )y{a+}(\\.| ).*|y{a+}(\\.| ).*|.*(\\.| )y{a+}|y{a+}",
        alphabet,
    )

    article_v1 = "aa ab. ba aa. aab a. b aa."
    article_v2 = "aa ab. ba ba. aab a. b aa."   # one sentence edited

    incremental = IncrementalExtractor(extractor, FastSentenceSplitter())

    results_v1 = incremental.evaluate(article_v1)
    print(f"v1: {len(results_v1)} matches; stats={incremental.stats()}")

    results_v2 = incremental.evaluate(article_v2)
    print(f"v2: {len(results_v2)} matches; stats={incremental.stats()}")

    stats = incremental.stats()
    print(f"\nAfter the edit, {stats['reused']} sentence results were "
          f"reused from cache and only "
          f"{stats['evaluated'] - 4} new sentence was evaluated.")

    # Both versions agree with from-scratch evaluation.
    assert results_v1 == extractor.evaluate(article_v1)
    assert results_v2 == extractor.evaluate(article_v2)
    print("incremental results match from-scratch evaluation: OK")


if __name__ == "__main__":
    main()
