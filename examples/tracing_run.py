"""Observability, end to end: trace a query, read the span tree,
export a Chrome trace, scrape Prometheus metrics.

``Q(...).traced()`` attaches a :class:`repro.Tracer` to the query's
engine: every phase of the run — certification, kernel compilation,
splitting, prefiltering, scheduling, chunk evaluation, merging — lands
in its span buffer, *including the spans recorded inside pool worker
processes*, which the scheduler ships back and grafts onto the parent
trace.  The engine's metrics registry fills alongside: chunk-latency
histograms, per-worker busy counters, queue-wait distributions,
certification timings.

Run with:  python examples/tracing_run.py
"""

import os
import tempfile

from repro import Q, Spanner, kernel_metrics
from repro.obs import Metrics, validate_chrome_trace


def main() -> None:
    alphabet = "ab ."
    names = Spanner.regex(
        ".*( )y{a+}( ).*|y{a+}( ).*|.*( )y{a+}|y{a+}", alphabet,
        name="a-runs",
    )

    # A small multi-document corpus with repeated chunks, run over two
    # worker processes so the trace shows cross-process collection.
    corpus = {
        "doc-a": "aa ab ba aa.",
        "doc-b": "aa ab ba aa.",
        "doc-c": "b a ab aaa aa.",
        "doc-d": "aaa aa b aa ab.",
    }

    print("== Traced query ==")
    query = Q(names).split_by("tokens").workers(2).traced()
    results = query.over(corpus)
    for doc_id, tuples in results.stream():
        print(f"  {doc_id}: {len(tuples)} tuples")

    print()
    print("== Span tree (worker spans flagged with their pid) ==")
    print(results.trace.render_tree())

    print("== Per-phase rollup (explain()['trace']) ==")
    explained = results.explain()
    trace_report = explained["trace"]
    for phase, seconds in sorted(trace_report["phases"].items()):
        print(f"  {phase:<20} {seconds * 1e3:8.2f} ms")
    print(f"  ({trace_report['spans']} spans total)")

    # Which kernel tier ran the chunks: "v2-bytes" (flat byte tables)
    # here — latin-1 alphabet, small subset automaton — or "v1-int"
    # (bitset fallback) for wide alphabets / huge automata.
    print(f"  kernel tier: {explained['kernel_tier']}")

    # The Chrome trace loads in Perfetto (https://ui.perfetto.dev) or
    # chrome://tracing; validate_chrome_trace is the same schema gate
    # CI runs on traced smoke runs.
    path = os.path.join(tempfile.gettempdir(), "repro_trace.json")
    results.trace.export_chrome(path)
    validate_chrome_trace(results.trace.to_chrome_trace())
    print()
    print(f"== Chrome trace written to {path} (Perfetto-loadable) ==")

    print()
    print("== Prometheus exposition (engine + compiled kernel) ==")
    combined = Metrics().merge(results.metrics).merge(kernel_metrics())
    exposition = combined.to_prometheus()
    for line in exposition.splitlines()[:16]:
        print(f"  {line}")
    print(f"  ... ({len(exposition.splitlines())} lines total)")

    query.engine().close()


if __name__ == "__main__":
    main()
