"""Debugging with split-correctness (Introduction + Section 3.1).

The paper's debugging story: a developer extracts, from an HTTP log,
pairs of Host and Date headers that are "close to each other".  The
buggy version can pair the Host of one request with the Date of the
*next* request; the system detects this by reporting that the program
is not splittable by the request splitter — unlike other programs over
the same log.

Log model (single-character alphabet, as in the library's splitter
conventions):  ``G`` a request line, ``h`` a Host header line, ``d`` a
Date header line, ``l`` any other line, ``#`` the blank-line separator
between requests.

Run with:  python examples/http_log_debugging.py
"""

from repro import compile_regex_formula, record_splitter
from repro.core import (
    cover_condition,
    is_self_splittable,
    self_splittability_witness,
)
from repro.runtime import Planner, RegisteredSplitter

ALPHABET = frozenset("Ghdl#")
BODY = "(G|h|d|l)"


def main() -> None:
    requests = record_splitter(ALPHABET, "#")

    # Buggy: host and date merely "close" (at most one line between),
    # possibly crossing the '#' boundary.
    buggy = compile_regex_formula(
        f".*x{{h}}(G|h|d|l|\\#)?y{{d}}.*"
        f"|x{{h}}(G|h|d|l|\\#)?y{{d}}.*"
        f"|.*x{{h}}(G|h|d|l|\\#)?y{{d}}"
        f"|x{{h}}(G|h|d|l|\\#)?y{{d}}",
        ALPHABET,
    )

    # Fixed: host and date within the same request (no '#' between).
    fixed = compile_regex_formula(
        f".*x{{h}}{BODY}?y{{d}}.*"
        f"|x{{h}}{BODY}?y{{d}}.*"
        f"|.*x{{h}}{BODY}?y{{d}}"
        f"|x{{h}}{BODY}?y{{d}}",
        ALPHABET,
    )

    print("== The planner's debugging report ==")
    planner = Planner([RegisteredSplitter("requests", requests)])
    for name, program in (("buggy", buggy), ("fixed", fixed)):
        reports = planner.analyse(program)
        for r in reports:
            print(f"  {name:6s} | splitter={r.name}: "
                  f"self-splittable={r.self_splittable}, "
                  f"splittable={r.splittable}")

    print("\n== Why the buggy program fails ==")
    print("cover condition (every match inside one request):",
          cover_condition(buggy, requests))
    witness = self_splittability_witness(buggy, requests)
    document, t = witness
    doc = "".join(document)
    print(f"witness log: {doc!r}")
    print(f"offending match: host={t['x']}, date={t['y']}"
          f"  (crosses the '#' boundary)")

    print("\n== The fixed program ==")
    print("self-splittable by requests:",
          is_self_splittable(fixed, requests))

    # Demonstrate on a concrete log: two requests, the buggy program
    # pairs request 1's host with request 2's date.
    log = "Gh#dl"
    print(f"\nlog = {log!r}")
    print("buggy matches:", sorted(buggy.evaluate(log), key=repr))
    print("fixed matches:", sorted(fixed.evaluate(log), key=repr))


if __name__ == "__main__":
    main()
