"""Binary index storage: build, mmap, edit by delta, compact.

The storage engine (:mod:`repro.index.store`) persists the trigram
prefilter index as immutable binary segments that open by ``mmap`` —
header parsing only, postings decode lazily per queried gram.  Edits
never rewrite a segment: introduced chunk texts land in a fresh
*delta* segment, texts no longer referenced anywhere get a tombstone
(a sound retreat — the engine falls back to the exact scan for them),
and ``compact()`` folds everything back into one clean segment.

The walkthrough mirrors the paper's Wikipedia-edit scenario: index a
corpus once, edit one document, and watch the engine re-evaluate only
the sentence the edit introduced.

Run with:  python examples/index_store_run.py
"""

import os
import tempfile

from repro import (
    Corpus,
    ExtractionEngine,
    Program,
    SegmentedIndex,
    compile_regex_formula,
)
from repro.runtime import RegisteredSplitter
from repro.runtime.fast import FastSeparatorSplitter
from repro.splitters.builders import separator_splitter

ALPHABET = frozenset("abcdefgh qz.")

DOCUMENTS = [
    "ab qz cd. ef gh ab. ab ab ab.",
    "ef gh. ab cd. qzz ab.",
    "cd cd cd. gh ef gh.",
]


def main() -> None:
    registry = [
        RegisteredSplitter(
            "sentences", separator_splitter(ALPHABET, "."),
            priority=1, executor=FastSeparatorSplitter("."),
        ),
    ]
    spanner = compile_regex_formula(
        ".*(\\.| )y{qz+}(\\.| ).*|y{qz+}(\\.| ).*"
        "|.*(\\.| )y{qz+}|y{qz+}",
        ALPHABET,
    )
    program = Program(spanner, name="qz-runs")
    corpus = Corpus.from_texts(DOCUMENTS)

    workdir = tempfile.mkdtemp(prefix="index-store-")
    path = os.path.join(workdir, "corpus.segs")

    # 1. Build a binary segmented index (one segment per shard).
    engine = ExtractionEngine(registry)
    index = engine.build_index(corpus, program,
                               format="binary", path=path)
    print("built:", index.describe())

    # 2. Reopen by mmap — header-only parse, postings stay on disk
    #    until a gram is actually queried.  The handle pickles as its
    #    path, so pool workers map segments instead of copying them.
    index.close()
    index = SegmentedIndex.open(path)
    engine.attach_index(index)
    result = engine.run(corpus, program)
    print("initial run:", result.total_tuples(), "tuples,",
          engine.stats().chunks_pruned, "chunks pruned by the index")

    # 3. Edit one document; run_delta diffs its chunk set into the
    #    index (delta segment + tombstone) and the chunk cache serves
    #    everything the edit left alone.
    before = engine.stats()
    edited = Corpus.from_mapping(
        {"doc-0000": "ab qz cd. ef gh qz. ab ab ab."}
    )
    delta = engine.run_delta(edited, program)
    print("after edit:",
          delta.stats.chunk_cache_misses, "chunk re-evaluated,",
          index.tombstone_count, "tombstone,",
          index.segment_count, "segments")
    print("  doc-0000 tuples:",
          len(delta.by_document["doc-0000"]))

    # 4. Compact: merge live texts into one segment, drop tombstones.
    #    Readers that mapped the old segments keep working until they
    #    refresh() — POSIX keeps the unlinked inodes alive for them.
    summary = index.compact()
    print("compacted:", summary)
    print("final:", index.describe())

    engine.close()
    index.close()


if __name__ == "__main__":
    main()
