"""A declarative extraction pipeline in spanner Datalog (Xlog-style).

The paper recalls that regular spanners are equally expressible as
non-recursive Datalog over regex formulas; frameworks like Xlog expose
that interface.  This example assembles a small pipeline — candidate
tokens, a "classifier" predicate, a negation filter — compiles it to a
single VSet-automaton, and then runs the framework's split-correctness
analysis on the *whole program*.

Run with:  python examples/datalog_pipeline.py
"""

from repro import compile_regex_formula, is_self_splittable, token_splitter
from repro.spanners.datalog import DatalogProgram, atom

ALPHABET = frozenset("ab .")
DELIM = "(\\.| )"


def main() -> None:
    program = DatalogProgram(ALPHABET)

    # EDB: token-delimited a-runs (candidate mentions).
    program.base("candidate", ["m"], compile_regex_formula(
        f".*{DELIM}m{{a+}}{DELIM}.*|m{{a+}}{DELIM}.*"
        f"|.*{DELIM}m{{a+}}|m{{a+}}",
        ALPHABET,
    ))
    # EDB: mentions directly followed by a period ("sentence-final").
    program.base("sentence_final", ["m"], compile_regex_formula(
        f".*{DELIM}m{{a+}}\\..*|m{{a+}}\\..*", ALPHABET
    ))
    # EDB: long mentions (three or more characters).
    program.base("long", ["m"], compile_regex_formula(
        f".*{DELIM}m{{aaa+}}{DELIM}.*|m{{aaa+}}{DELIM}.*"
        f"|.*{DELIM}m{{aaa+}}|m{{aaa+}}",
        ALPHABET,
    ))

    # IDB: interesting mentions = long candidates that are not
    # sentence-final.
    program.rule("interesting", ["m"], [
        atom("candidate", ["m"]),
        atom("long", ["m"]),
        atom("sentence_final", ["m"], negated=True),
    ])

    pipeline = program.compile("interesting")
    document = "aaa ab. aaaa aa aaa."
    print(f"document: {document!r}")
    for t in sorted(program.evaluate("interesting", document), key=repr):
        print(f"  interesting mention {t['m']} -> "
              f"{t['m'].extract(document)!r}")

    # The compiled program is an ordinary spanner: analyze it.
    tokens = token_splitter(ALPHABET, separators={" "})
    print("\npipeline self-splittable by tokens:",
          is_self_splittable(pipeline, tokens))


if __name__ == "__main__":
    main()
