"""Annotated splitters: GET/POST routing (Section 7.3).

An annotated splitter tags each chunk with a key; a key-spanner
mapping routes each chunk to a different split-spanner.  The example
splits an HTTP-like log into records annotated GET or POST and runs a
different extractor per method, with both the general (Theorem E.3)
and the highlander fast-path (Theorem E.4) certificates.

Log model: ``g``/``p`` start a GET/POST record, ``a``/``b`` payload
characters, ``#`` separates records.

Run with:  python examples/annotated_routing.py
"""

from repro import AnnotatedSplitter, compile_regex_formula, determinize
from repro.core.annotated import (
    annotated_split_correct,
    annotated_split_correct_highlander,
    compose_annotated,
)

ALPHABET = frozenset("gp#ab")
BODY = "(g|p|a|b)"


def main() -> None:
    get_records = compile_regex_formula(
        f"(.*\\#)?x{{g{BODY}*}}((\\#).*)?", ALPHABET
    )
    post_records = compile_regex_formula(
        f"(.*\\#)?x{{p{BODY}*}}((\\#).*)?", ALPHABET
    )
    annotated = AnnotatedSplitter({"GET": get_records,
                                   "POST": post_records})
    print("highlander (disjoint, one key per span):",
          annotated.is_highlander())

    # P extracts 'a's from GET records and 'b's from POST records.
    spanner = compile_regex_formula(
        f"((.*\\#)?(g){BODY}*y{{a}}{BODY}*((\\#).*)?)"
        f"|((.*\\#)?(p){BODY}*y{{b}}{BODY}*((\\#).*)?)",
        ALPHABET,
    )
    mapping = {
        "GET": compile_regex_formula(f"(g){BODY}*y{{a}}{BODY}*", ALPHABET),
        "POST": compile_regex_formula(f"(p){BODY}*y{{b}}{BODY}*", ALPHABET),
    }

    print("annotated split-correct (Thm E.3):",
          annotated_split_correct(spanner, mapping, annotated))
    print("highlander fast path (Thm E.4):",
          annotated_split_correct_highlander(
              determinize(spanner),
              {k: determinize(v) for k, v in mapping.items()},
              AnnotatedSplitter(
                  {k: determinize(v) for k, v in annotated.keyed.items()}
              ),
              check=False,
          ))

    log = "gaab#pbb#gba"
    print(f"\nlog = {log!r}")
    print("annotated splits:")
    for key, span in sorted(annotated.evaluate(log), key=repr):
        print(f"  {key:4s} {span} -> {span.extract(log)!r}")
    composed = compose_annotated(mapping, annotated)
    print("routed extraction:")
    for t in sorted(composed.evaluate(log), key=repr):
        print(f"  y = {t['y']} -> {t['y'].extract(log)!r}")
    assert composed.evaluate(log) == spanner.evaluate(log)


if __name__ == "__main__":
    main()
