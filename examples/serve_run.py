"""The resident serving layer, end to end: one hot engine behind a
dispatcher thread, concurrent queries sharing a certification,
deadlines that cancel cooperatively, admission control, and per-tenant
metrics.

:class:`repro.ExtractionService` owns an
:class:`repro.ExtractionEngine` and drives it from a single dispatcher
thread — the ownership boundary that lets many callers (threads or
asyncio tasks) share one plan cache and one chunk cache without racing
certification.  A query that misses its :class:`repro.Deadline` raises
:class:`repro.DeadlineExceededError` at a batch boundary and leaves
the engine, pool, and caches live for the next caller; a full
admission queue rejects synchronously with
:class:`repro.ServiceOverloadedError`.

Run with:  python examples/serve_run.py
"""

import asyncio
import threading

from repro import (
    DeadlineExceededError,
    ExtractionEngine,
    ExtractionService,
    Program,
)
from repro.runtime import FastSeparatorSplitter, RegisteredSplitter
from repro.spanners.regex_formulas import compile_regex_formula
from repro.splitters.builders import token_splitter

ALPHABET = frozenset("ab .")
PATTERN = (".*(\\.| )y{a+}(\\.| ).*|y{a+}(\\.| ).*"
           "|.*(\\.| )y{a+}|y{a+}")


def build_service() -> ExtractionService:
    splitters = [
        RegisteredSplitter("tokens", token_splitter(ALPHABET), priority=1,
                           executor=FastSeparatorSplitter(" ")),
    ]
    engine = ExtractionEngine(splitters, batch_size=4)
    program = Program(compile_regex_formula(PATTERN, ALPHABET),
                      name="a-runs")
    return ExtractionService(engine, program=program, max_queue=8,
                             default_deadline=5.0)


def main() -> None:
    corpus = {
        "doc-a": "aa ab a.",
        "doc-b": "ab ab aa.",
        "doc-c": "aa ab a.",   # identical to doc-a: chunk-cache fodder
        "doc-d": "b aa b",
    }

    with build_service() as service:
        service.start()

        print("== Synchronous extraction ==")
        result = service.extract(corpus, tenant="acme")
        print(f"{result.total_tuples} tuples from {len(result)} documents "
              f"(queue {result.queue_seconds * 1e3:.2f}ms, "
              f"run {result.run_seconds * 1e3:.2f}ms)")
        for doc_id in sorted(result.by_document):
            print(f"  {doc_id}: {sorted(result[doc_id], key=repr)}")

        # Concurrent callers: the dispatcher serialises execution, so
        # all eight queries share the single certification done above
        # and hit the warm chunk cache.
        print("\n== Eight concurrent threads ==")
        totals = []
        barrier = threading.Barrier(8)

        def worker() -> None:
            barrier.wait()
            totals.append(service.extract(corpus, tenant="acme").total_tuples)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        print(f"totals agree: {sorted(set(totals))} "
              f"(plan-cache hits now {service.engine_stats().plan_cache_hits})")

        # The asyncio front end awaits the same dispatcher.
        print("\n== asyncio front end ==")

        async def fan_out() -> list:
            return await asyncio.gather(*(
                service.extract_async(corpus, tenant="zeta")
                for _ in range(3)
            ))

        for result in asyncio.run(fan_out()):
            print(f"  zeta query: {result.total_tuples} tuples")

        # A deadline of zero seconds expires before the first batch —
        # the typed error carries elapsed/budget, and the service stays
        # healthy for the next query.
        print("\n== Deadline miss (engine survives) ==")
        try:
            service.extract(corpus, tenant="acme", deadline=0.0)
        except DeadlineExceededError as exc:
            print(f"  missed as expected: {exc}")
        follow_up = service.extract(corpus, tenant="acme")
        print(f"  follow-up query still fine: {follow_up.total_tuples} tuples")

        print("\n== Per-tenant stats ==")
        for tenant in ("acme", "zeta"):
            stats = service.tenant_stats(tenant)
            print(f"  {tenant}: {stats['queries']} queries, "
                  f"{stats['deadline_misses']} deadline misses, "
                  f"p95 latency {stats['latency_p95'] * 1e3:.2f}ms")

        print("\n== Prometheus exposition (excerpt) ==")
        for line in service.to_prometheus().splitlines():
            if line.startswith("service_queries"):
                print(f"  {line}")


if __name__ == "__main__":
    main()
