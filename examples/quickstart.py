"""Quickstart: certify a split plan, then run it.

The end-to-end loop the paper motivates: a data scientist writes a
declarative extractor; the system decides — automatically, with the
split-correctness procedures — which pre-materialized splitters the
extractor can be distributed over, then executes the certified plan.

Run with:  python examples/quickstart.py
"""

from repro import (
    compile_regex_formula,
    is_disjoint,
    is_self_splittable,
    sentence_splitter,
    token_splitter,
)
from repro.runtime import (
    FastSeparatorSplitter,
    Planner,
    RegisteredSplitter,
    split_by,
)


def main() -> None:
    # Documents are lowercase prose over a small demo alphabet:
    # letters 'a'/'b', spaces between tokens, periods ending sentences.
    alphabet = frozenset("ab .")

    # The extractor: maximal runs of 'a' delimited by token boundaries
    # (spaces, periods, or the document edges).  Think "person-name
    # tokens" in miniature.
    extractor = compile_regex_formula(
        ".*(\\.| )y{a+}(\\.| ).*"     # delimited on both sides
        "|y{a+}(\\.| ).*"             # at the start of the document
        "|.*(\\.| )y{a+}"             # at the end
        "|y{a+}",                     # the whole document
        alphabet,
    )

    tokens = token_splitter(alphabet, separators={" "})
    sentences = sentence_splitter(alphabet)

    print("== Analysis ==")
    print(f"token splitter disjoint:     {is_disjoint(tokens)}")
    print(f"sentence splitter disjoint:  {is_disjoint(sentences)}")
    print(f"self-splittable by tokens:   "
          f"{is_self_splittable(extractor, tokens)}")
    print(f"self-splittable by sentences:"
          f" {is_self_splittable(extractor, sentences)}")

    # The planner does the same automatically, preferring the finest
    # certified splitter, and pairs it with a fast implementation.
    planner = Planner([
        RegisteredSplitter("tokens", tokens, priority=2,
                           executor=FastSeparatorSplitter(" ")),
        RegisteredSplitter("sentences", sentences, priority=1),
    ])
    plan = planner.plan(extractor)
    print(f"\n== Plan ==\nmode={plan.mode}, splitter={plan.splitter.name}, "
          f"self-splittable={plan.self_splittable}")

    document = "aa ab. a aaa b. aa"
    results = plan.execute(extractor, document)
    print(f"\n== Extraction on {document!r} ==")
    for t in sorted(results, key=repr):
        span = t["y"]
        print(f"  y = {span} -> {span.extract(document)!r}")

    # Split evaluation gives the same answer as the whole document —
    # that is exactly what the certificate guarantees.
    assert results == extractor.evaluate(document)
    assert results == split_by(extractor, FastSeparatorSplitter(" "),
                               document)
    print("\nsplit plan output matches whole-document evaluation: OK")


if __name__ == "__main__":
    main()
