"""A1 — ablations of the design choices behind the speedup experiments.

Three sweeps isolating what drives the split-then-distribute gains the
Introduction reports:

* **skew** — speedup vs. the mass fraction held by the largest
  document (the straggler effect);
* **batching** — speedup vs. record batch size (scheduling overhead
  amortization; both extremes lose);
* **workers** — speedup vs. pool width at fixed skew (splitting only
  matters once whole documents can no longer fill the pool).
"""

import pytest

from benchmarks.conftest import report
from benchmarks.corpora import skewed_prose_corpus
from benchmarks.workloads import TokenNgramExtractor, sentence_splitter_fast
from repro.runtime.simulation import simulate_corpus_speedup


def _speedup(head_fraction=0.6, chunksize=8, workers=5,
             total_sentences=600):
    corpus = skewed_prose_corpus(
        n_documents=24, total_sentences=total_sentences, seed=11,
        head_fraction=head_fraction,
    )
    extractor = TokenNgramExtractor(2, work=60)
    result = simulate_corpus_speedup(
        extractor, corpus, sentence_splitter_fast(),
        workers=workers, repeats=2, chunksize=chunksize,
    )
    return result.speedup


@pytest.mark.benchmark(group="a1-ablations")
def test_a1_skew_sweep(benchmark):
    def sweep():
        return [(f, _speedup(head_fraction=f)) for f in (0.1, 0.3, 0.6)]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    text = ", ".join(f"head={f:.0%}: {s:.2f}x" for f, s in rows)
    report("A1 skew", "speedup grows with document-length skew", text)
    assert rows[-1][1] > rows[0][1]


@pytest.mark.benchmark(group="a1-ablations")
def test_a1_batching_sweep(benchmark):
    def sweep():
        return [(c, _speedup(chunksize=c)) for c in (1, 8, 64, 4096)]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    text = ", ".join(f"batch={c}: {s:.2f}x" for c, s in rows)
    report("A1 batching",
           "moderate batches beat per-record overhead and giant batches",
           text)
    best = max(s for _c, s in rows)
    # The best batch size is an interior point of the sweep.
    assert best > rows[0][1] or best > rows[-1][1]


@pytest.mark.benchmark(group="a1-ablations")
def test_a1_worker_sweep(benchmark):
    def sweep():
        return [(w, _speedup(workers=w)) for w in (1, 2, 5, 10)]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    text = ", ".join(f"workers={w}: {s:.2f}x" for w, s in rows)
    report("A1 workers", "splitting is neutral at 1 worker, grows with "
                         "pool width until the tail dominates", text)
    assert rows[0][1] == pytest.approx(1.0, rel=0.3)
    assert max(s for _w, s in rows) >= rows[0][1]
