"""T4 — weak determinism does not help (Theorem 4.2).

The paper's Theorem 4.2 shows containment of *weakly deterministic*
functional VSet-automata is PSPACE-hard, contradicting the coNP upper
bound claimed by Maturana et al. [25]; the error is a pumping argument
that assumes polynomial-size non-containment witnesses.

The benchmark measures, on the reduction family, how the shortest
non-containment witness (extracted from the decision procedure) grows
with instance size — the quantity whose boundedness [25] assumed.
"""

import time

import pytest

from benchmarks.conftest import report
from repro.automata.containment import containment_counterexample
from repro.automata.dfa import random_dfa
from repro.reductions import (
    union_universality_instance,
    weak_determinism_containment_instance,
)

SIGMA = ["b", "c"]


def _non_universal_family(n_dfas: int, states: int, base_seed: int):
    """DFAs whose union misses some word (so a witness exists)."""
    seed = base_seed
    while True:
        dfas = [random_dfa(SIGMA, states, seed + k) for k in range(n_dfas)]
        if not union_universality_instance(dfas, SIGMA):
            return dfas
        seed += 100


@pytest.mark.benchmark(group="t4-weak-determinism")
def test_t4_witness_growth(benchmark):
    def sweep():
        rows = []
        for n_dfas, states in ((1, 2), (2, 3), (3, 4)):
            dfas = _non_universal_family(n_dfas, states, 1000 * n_dfas)
            a, a_prime = weak_determinism_containment_instance(dfas, SIGMA)
            start = time.perf_counter()
            witness = containment_counterexample(
                a.extended_nfa(), a_prime.extended_nfa()
            )
            elapsed = time.perf_counter() - start
            assert witness is not None
            rows.append((n_dfas, states, len(witness), elapsed))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    text = ", ".join(
        f"n={n},|A|={s}: witness={w} blocks in {t*1e3:.0f}ms"
        for n, s, w, t in rows
    )
    report("T4", "witnesses can be exponential (refutes [25]'s coNP bound)",
           text)
