"""T5 — reasoning about splitters (Section 6).

Times commutativity (Theorem 6.2) and subsumption (Theorem 6.3) on the
paper's page/paragraph scenario, and the Lemma 6.5 transfer inference
the planner uses.
"""

import time

import pytest

from benchmarks.conftest import report
from repro.core.reasoning import (
    compose_splitters,
    self_split_transfers,
    splitters_commute,
    subsumes,
)
from repro.spanners.regex_formulas import compile_regex_formula
from repro.splitters.builders import separator_splitter, token_splitter

DOC = frozenset("pq#\n")
TXT = frozenset("ab \n")


@pytest.mark.benchmark(group="t5-reasoning")
def test_t5_commutativity(benchmark):
    pages = separator_splitter(DOC, "#")
    paragraphs = separator_splitter(DOC, "\n")

    def run():
        start = time.perf_counter()
        answer = splitters_commute(pages, paragraphs)
        return answer, time.perf_counter() - start

    answer, elapsed = benchmark.pedantic(run, rounds=1, iterations=1)
    report("T5 commute", "pages/paragraphs commute (query-plan choice)",
           f"{answer} in {elapsed*1e3:.0f}ms")
    assert answer


@pytest.mark.benchmark(group="t5-reasoning")
def test_t5_subsumption(benchmark):
    pages = separator_splitter(DOC, "#")

    def run():
        return subsumes(pages, pages)

    answer = benchmark.pedantic(run, rounds=1, iterations=1)
    report("T5 subsume", "re-splitting chunks by the same splitter is a "
                         "no-op", f"{answer}")
    assert answer


@pytest.mark.benchmark(group="t5-reasoning")
def test_t5_transfer(benchmark):
    extractor = compile_regex_formula(
        ".*( |\n)y{a+}( |\n).*|y{a+}( |\n).*|.*( |\n)y{a+}|y{a+}", TXT
    )
    tokens = token_splitter(TXT)
    lines = separator_splitter(TXT, "\n")

    def run():
        return self_split_transfers(extractor, tokens, lines)

    answer = benchmark.pedantic(run, rounds=1, iterations=1)
    report("T5 transfer", "Lemma 6.5: token-splittable => line-splittable",
           f"{answer}")
    assert answer
