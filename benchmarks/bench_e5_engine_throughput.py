"""E5 — Corpus engine throughput: cached sharded evaluation.

Not a paper experiment but the system the Introduction envisions: once
``P = P_S o S`` is certified, a corpus engine can (a) pay for the
PSPACE certification once per program, and (b) evaluate each distinct
chunk once corpus-wide, because chunk results are context-free.  This
benchmark runs :class:`repro.engine.ExtractionEngine` on a synthetic
boilerplate-heavy corpus (documents assembled from a shared sentence
pool) against the per-document ``evaluate_whole`` baseline
(:func:`repro.runtime.executor.map_corpus_sequential`).

The engine runs with ``workers=0`` so the measured speedup isolates
the caching/dedup effect from parallelism (which E1–E4 cover); the
claims under test are the acceptance criteria: identical results,
chunk-cache hit rate > 0, and certification exactly once per
(spanner, splitter registry) pair even across repeated runs.
"""

import pytest

from benchmarks.conftest import report, timed
from benchmarks.corpora import boilerplate_corpus
from repro.engine import ExtractionEngine, Program
from repro.runtime import RegisteredSplitter, map_corpus_sequential
from repro.runtime.fast import FastSeparatorSplitter, RegexSpanner
from repro.spanners.regex_formulas import compile_regex_formula
from repro.splitters.builders import separator_splitter

ALPHABET = frozenset("ab .")
CORPUS = boilerplate_corpus(
    n_documents=40, sentences_per_document=30, distinct_sentences=18,
    seed=23,
)
#: Per-match feature-computation rounds, emulating the real IE cost the
#: paper's pipelines pay per extracted window (same device as the
#: ``work`` knobs in :mod:`benchmarks.workloads`).
WORK = 400


def _feature_cost(window: str) -> None:
    digest = 0
    for k in range(WORK):
        digest ^= hash((window, k, digest))


def mini_specification():
    """The miniature a-run extractor the decision procedures certify."""
    return compile_regex_formula(
        ".*(\\.| )y{a+}(\\.| ).*|y{a+}(\\.| ).*|.*(\\.| )y{a+}|y{a+}",
        ALPHABET,
    )


def fast_extractor() -> RegexSpanner:
    """The production-path extractor (Python ``re``), paired with the
    specification so the engine can certify it."""
    return RegexSpanner(r"(?:^|[ .])(?P<y>a+)(?=[ .]|$)",
                        specification=mini_specification(),
                        cost=_feature_cost)


def token_registry():
    return [
        RegisteredSplitter(
            "tokens", separator_splitter(ALPHABET, " ."),
            priority=1, executor=FastSeparatorSplitter(" ."),
        ),
    ]


def test_premise_engine_matches_per_document_baseline():
    """Acceptance: engine results identical to ``evaluate_whole``."""
    extractor = fast_extractor()
    engine = ExtractionEngine(token_registry(), workers=0, batch_size=8)
    result = engine.run(CORPUS, Program(extractor))
    assert result.plan.mode == "split"
    assert result.plan.splitter_name == "tokens"
    baseline = map_corpus_sequential(extractor, CORPUS)
    for index, expected in enumerate(baseline):
        assert result[f"doc-{index:04d}"] == expected


def test_certification_once_per_program_registry_pair():
    """Acceptance: repeated runs replay the certificate."""
    engine = ExtractionEngine(token_registry(), workers=0)
    program = Program(fast_extractor())
    engine.run(CORPUS[:10], program)
    engine.run(CORPUS[10:], program)
    stats = engine.stats()
    assert stats.certifications == 1
    assert stats.plan_cache_hits == 1


@pytest.mark.benchmark(group="e5-engine")
def test_e5_cold_engine_vs_per_document(benchmark):
    """Cold engine (empty caches) vs per-document evaluation."""
    extractor = fast_extractor()
    baseline_seconds = timed(
        lambda: map_corpus_sequential(extractor, CORPUS), repeats=2
    )

    def cold_run():
        engine = ExtractionEngine(token_registry(), workers=0,
                                  batch_size=8)
        return engine, engine.run(CORPUS, Program(fast_extractor()))

    engine, result = benchmark.pedantic(cold_run, rounds=1, iterations=1)
    stats = engine.stats()
    speedup = baseline_seconds / max(stats.extraction_seconds, 1e-9)
    report(
        "E5 cold",
        "no paper claim (new subsystem)",
        f"{speedup:.2f}x vs evaluate_whole, hit rate "
        f"{stats.chunk_hit_rate:.2f}, dedup {stats.dedup_factor:.1f}x, "
        f"{stats.chunks_per_second:,.0f} chunks/s, "
        f"certified once in {stats.certification_seconds:.3f}s",
        metrics={
            "workload": "boilerplate corpus, cold caches",
            "speedup": speedup,
            "baseline_seconds": baseline_seconds,
            "engine_seconds": stats.extraction_seconds,
        },
        stats=stats,
    )
    assert stats.chunk_cache_hits > 0
    assert stats.certifications == 1
    assert stats.chunks_evaluated < stats.chunks_total
    assert speedup > 1.2
    assert result.total_tuples() > 0


@pytest.mark.benchmark(group="e5-engine")
def test_e5_warm_engine_vs_per_document(benchmark):
    """Steady state: caches populated by a prior run of the corpus."""
    extractor = fast_extractor()
    baseline_seconds = timed(
        lambda: map_corpus_sequential(extractor, CORPUS), repeats=2
    )
    engine = ExtractionEngine(token_registry(), workers=0, batch_size=8)
    program = Program(fast_extractor())
    engine.run(CORPUS, program)  # warm both cache levels
    warmed = engine.stats().extraction_seconds

    result = benchmark.pedantic(
        lambda: engine.run(CORPUS, program), rounds=1, iterations=1
    )
    stats = engine.stats()
    warm_seconds = max(stats.extraction_seconds - warmed, 1e-9)
    speedup = baseline_seconds / warm_seconds
    report(
        "E5 warm",
        "no paper claim (new subsystem)",
        f"{speedup:.2f}x vs evaluate_whole "
        f"(hit rate {stats.chunk_hit_rate:.2f}, certifications "
        f"{stats.certifications})",
        metrics={
            "workload": "boilerplate corpus, warm caches",
            "speedup": speedup,
            "baseline_seconds": baseline_seconds,
            "engine_seconds": warm_seconds,
        },
        stats=stats,
    )
    assert stats.certifications == 1
    # The warm run evaluates no new chunks at all.
    assert stats.chunks_evaluated == len(engine.chunk_cache)
    assert speedup > 1.5
    assert result.total_tuples() > 0


@pytest.mark.benchmark(group="e5-engine")
def test_e5_sharded_run(benchmark):
    """Sharded execution: same results, same dedup, deterministic."""
    engine = ExtractionEngine(token_registry(), workers=0, batch_size=8)
    program = Program(fast_extractor())
    result = benchmark.pedantic(
        lambda: engine.run_sharded(CORPUS, program, num_shards=4),
        rounds=1, iterations=1,
    )
    plain = ExtractionEngine(token_registry(), workers=0).run(
        CORPUS, Program(fast_extractor())
    )
    assert result.by_document == plain.by_document
    stats = engine.stats()
    report(
        "E5 sharded",
        "no paper claim (new subsystem)",
        f"4 shards, hit rate {stats.chunk_hit_rate:.2f}, "
        f"certifications {stats.certifications}",
        metrics={
            "workload": "boilerplate corpus, 4 deterministic shards",
        },
        stats=stats,
    )
    assert stats.certifications == 1
    assert stats.chunk_cache_hits > 0
