"""E9 — Binary index storage: mmap open latency and edit deltas.

Not a paper experiment but the storage moral of the paper's
Wikipedia-edit scenario: once extraction state lives in an index, how
fast that index *opens* and how little of it an edit *touches* decide
whether incremental extraction pays off.  PR 9's storage engine
(:mod:`repro.index.store`) answers both with an LSM-style design —
immutable mmap-able binary segments plus delta segments and
tombstones for edits.

Two claims under test:

* **Open latency** — ``SegmentedIndex.open`` maps segment files and
  parses only their headers; postings decode lazily per queried gram.
  ``CorpusIndex.load`` must parse the whole JSON snapshot and rebuild
  every posting mask up front.  On a >= 100k-chunk corpus the mmap
  open must be **>= 50x** faster — while admitting exactly the same
  candidate texts for the same factor set.
* **Edit delta** — after editing 1% of documents (one sentence each),
  :meth:`ExtractionEngine.run_delta` maintains the index (one delta
  segment + tombstones) and re-evaluates **<= 5%** of the corpus
  chunks (everything unchanged is served by the chunk cache), with
  results identical to a full rebuild-and-rerun.

The JSON comparison artifact is written directly in the
``CorpusIndex.save`` v1 payload shape from id-list postings —
byte-identical semantics to ``CorpusIndex.build(...).save(...)``
without its big-int build cost, so the benchmark measures *load*
time, not our patience.

``python -m benchmarks.bench_e9_index_store --smoke`` runs a
scaled-down version with a relaxed (10x) open threshold as a CI
regression gate.
"""

from __future__ import annotations

import json
import os
import random
import sys
import tempfile
import time
from typing import Dict, List

import pytest

from benchmarks.conftest import report
from repro.engine import Corpus, ExtractionEngine, Program
from repro.index import CorpusIndex, factors_of
from repro.index.store import SegmentedIndex
from repro.index.trigram import grams_of
from repro.runtime import RegisteredSplitter
from repro.runtime.fast import FastSeparatorSplitter
from repro.spanners.regex_formulas import compile_regex_formula
from repro.spanners.vset_automaton import VSetAutomaton
from repro.splitters.builders import separator_splitter

ALPHABET = frozenset("abcdefgh qz.")

#: The E7 selective workload: delimiter-bounded ``qz``-runs.
PATTERN = (".*(\\.| )y{qz+}(\\.| ).*|y{qz+}(\\.| ).*"
           "|.*(\\.| )y{qz+}|y{qz+}")


def qz_extractor() -> VSetAutomaton:
    return compile_regex_formula(PATTERN, ALPHABET)


def sentence_registry() -> List[RegisteredSplitter]:
    return [
        RegisteredSplitter(
            "sentences", separator_splitter(ALPHABET, "."),
            priority=1, executor=FastSeparatorSplitter("."),
        ),
    ]


# ----------------------------------------------------------------------
# Workload A: open latency (mmap binary vs JSON snapshot)
# ----------------------------------------------------------------------


_LETTERS = "abcdefgh"


def _distinct_texts(count: int, seed: int) -> List[str]:
    """``count`` distinct sentence-like chunk texts.

    A base-8 letter suffix guarantees distinctness without leaving
    the workload alphabet, so dedup cannot shrink the corpus.
    """
    rng = random.Random(seed)

    def token() -> str:
        return "".join(rng.choice(_LETTERS)
                       for _ in range(rng.randint(2, 7)))

    def suffix(value: int) -> str:
        digits = []
        while True:
            digits.append(_LETTERS[value & 7])
            value >>= 3
            if not value:
                return "".join(reversed(digits))

    texts = []
    for i in range(count):
        words = [token() for _ in range(rng.randint(4, 8))]
        if rng.random() < 0.05:
            words[rng.randrange(len(words))] = \
                "q" + "z" * rng.randint(1, 3)
        words.append(suffix(i))
        texts.append(" ".join(words))
    return texts


def write_json_snapshot(path: str, texts: List[str]) -> None:
    """Write ``texts`` as a ``CorpusIndex.save`` v1 payload.

    Postings are built as id *lists* (what the v1 file stores anyway)
    instead of detouring through ``CorpusIndex.build``'s per-gram
    big-int masks — same bytes, linear build time.
    """
    postings: Dict[str, List[int]] = {}
    for tid, text in enumerate(texts):
        for gram in grams_of(text):
            postings.setdefault(gram, []).append(tid)
    payload = {
        "version": 1,
        "splitter": None,
        "documents": len(texts),
        "chunk_instances": len(texts),
        "shards_indexed": 1,
        "texts": texts,
        "postings": {gram: postings[gram] for gram in sorted(postings)},
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, ensure_ascii=False)


def measure_open(n_texts: int, workdir: str, repeats: int = 5) -> dict:
    """Build both artifacts over the same texts, time their opens.

    Asserts (inside) that both opened indexes admit exactly the same
    candidate texts for the selective factor set — the speedup is not
    bought with a weaker prefilter.
    """
    texts = _distinct_texts(n_texts, seed=41)

    json_path = os.path.join(workdir, "corpus.idx")
    start = time.perf_counter()
    write_json_snapshot(json_path, texts)
    json_build_seconds = time.perf_counter() - start

    binary_path = os.path.join(workdir, "corpus.segs")
    start = time.perf_counter()
    binary = SegmentedIndex.create(binary_path)
    with binary.batch():
        binary.add_document(texts, doc_id="corpus")
    binary.close()
    binary_build_seconds = time.perf_counter() - start

    json_open_seconds = float("inf")
    for _ in range(max(1, repeats // 2)):
        start = time.perf_counter()
        json_index = CorpusIndex.load(json_path)
        json_open_seconds = min(json_open_seconds,
                                time.perf_counter() - start)

    binary_open_seconds = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        opened = SegmentedIndex.open(binary_path)
        binary_open_seconds = min(binary_open_seconds,
                                  time.perf_counter() - start)
        if _ < repeats - 1:
            opened.close()

    # Same admitted candidates from both stores (ids differ — the
    # binary store sorts texts — so compare the admitted text sets).
    factors = factors_of(qz_extractor())
    assert factors is not None and factors.effective
    json_mask = json_index.candidates(factors)
    binary_mask = opened.candidates(factors)
    assert json_mask is not None and binary_mask is not None

    def admitted(index, mask):
        all_texts = list(index.texts()) if hasattr(index, "texts") \
            else index._texts
        return {all_texts[tid] for tid in range(len(all_texts))
                if (mask >> tid) & 1}

    json_admitted = admitted(json_index, json_mask)
    binary_admitted = admitted(opened, binary_mask)
    assert json_admitted == binary_admitted
    assert 0 < len(binary_admitted) < n_texts
    opened.close()

    return {
        "texts": n_texts,
        "json_bytes": os.path.getsize(json_path),
        "binary_bytes": sum(
            os.path.getsize(os.path.join(binary_path, name))
            for name in os.listdir(binary_path)
        ),
        "json_build_seconds": json_build_seconds,
        "binary_build_seconds": binary_build_seconds,
        "json_open_seconds": json_open_seconds,
        "binary_open_seconds": binary_open_seconds,
        "open_speedup": json_open_seconds / max(binary_open_seconds,
                                                1e-9),
        "admitted": len(binary_admitted),
    }


# ----------------------------------------------------------------------
# Workload B: edit delta (1% of documents edited)
# ----------------------------------------------------------------------


def _edit_corpus(n_documents: int, sentences_per_document: int,
                 seed: int) -> List[str]:
    """Selective prose documents (5% of sentences carry ``qz``)."""
    rng = random.Random(seed)

    def token() -> str:
        return "".join(rng.choice(_LETTERS)
                       for _ in range(rng.randint(2, 7)))

    def sentence(with_hit: bool) -> str:
        words = [token() for _ in range(rng.randint(6, 12))]
        if with_hit:
            words[rng.randrange(len(words))] = \
                "q" + "z" * rng.randint(1, 3)
        return " ".join(words)

    return [
        ". ".join(sentence(rng.random() < 0.05)
                  for _ in range(sentences_per_document)) + "."
        for _ in range(n_documents)
    ]


def measure_edit_delta(n_documents: int,
                       sentences_per_document: int = 12,
                       seed: int = 53) -> dict:
    """Edit 1% of documents; measure what ``run_delta`` re-evaluates.

    Asserts (inside) that the delta results equal a fresh full
    rebuild-and-rerun over the edited corpus, document by document.
    """
    documents = _edit_corpus(n_documents, sentences_per_document, seed)
    corpus = Corpus.from_texts(documents)
    program = Program(qz_extractor(), name="qz-runs")

    workdir = tempfile.mkdtemp(prefix="bench-e9-")
    engine = ExtractionEngine(sentence_registry(), batch_size=16)
    index = engine.build_index(
        corpus, program, format="binary",
        path=os.path.join(workdir, "corpus.segs"),
    )
    engine.attach_index(index)
    engine.run(corpus, program)
    chunks_total = engine.stats().chunks_total

    # Edit 1% of documents: one fresh qz-bearing sentence each.
    rng = random.Random(seed + 1)
    edited_count = max(1, n_documents // 100)
    edited: Dict[str, str] = {}
    for doc_index in rng.sample(range(n_documents), edited_count):
        sentences = documents[doc_index].rstrip(".").split(". ")
        # A doc-index suffix keeps the fresh sentences distinct, so
        # chunk dedup cannot collapse the edits into one evaluation.
        sentences[rng.randrange(len(sentences))] = (
            "qzz added "
            + " ".join("ab" for _ in range(rng.randint(3, 6)))
            + " " + "".join(_LETTERS[(doc_index >> shift) & 7]
                            for shift in (9, 6, 3, 0))
        )
        text = ". ".join(sentences) + "."
        documents[doc_index] = text
        edited[f"doc-{doc_index:04d}"] = text
    delta_corpus = Corpus.from_mapping(edited)

    start = time.perf_counter()
    delta_result = engine.run_delta(delta_corpus, program)
    delta_seconds = time.perf_counter() - start
    reevaluated = delta_result.stats.chunk_cache_misses
    fraction = reevaluated / max(chunks_total, 1)

    # Ground truth: rebuild everything from the edited documents.
    rebuilt_engine = ExtractionEngine(sentence_registry(),
                                      batch_size=16)
    edited_corpus = Corpus.from_texts(documents)
    start = time.perf_counter()
    rebuilt_index = rebuilt_engine.build_index(
        edited_corpus, program, format="binary",
        path=os.path.join(workdir, "rebuilt.segs"),
    )
    rebuilt_engine.attach_index(rebuilt_index)
    full_result = rebuilt_engine.run(edited_corpus, program)
    full_seconds = time.perf_counter() - start

    for doc_id in edited:
        assert delta_result.by_document.get(doc_id, set()) \
            == full_result.by_document.get(doc_id, set()), doc_id
    assert index.tombstone_count >= 1
    assert index.segment_count > rebuilt_index.segment_count

    summary = {
        "documents": n_documents,
        "chunks_total": chunks_total,
        "documents_edited": edited_count,
        "chunks_reevaluated": reevaluated,
        "reevaluated_fraction": fraction,
        "delta_seconds": delta_seconds,
        "full_rebuild_seconds": full_seconds,
        "delta_speedup": full_seconds / max(delta_seconds, 1e-9),
        "tombstones": index.tombstone_count,
        "segments_after_delta": index.segment_count,
    }
    engine.close()
    index.close()
    rebuilt_engine.close()
    rebuilt_index.close()
    return summary


# ----------------------------------------------------------------------
# Benchmarks
# ----------------------------------------------------------------------


@pytest.mark.benchmark(group="e9-index-store")
def test_e9_open_latency(benchmark, tmp_path):
    result = benchmark.pedantic(
        lambda: measure_open(100_000, str(tmp_path)),
        rounds=1, iterations=1,
    )
    report(
        "E9 index store open",
        "no paper claim (storage engine)",
        f"mmap open {result['open_speedup']:.0f}x faster than JSON "
        f"load on {result['texts']:,} chunks "
        f"({result['binary_open_seconds']*1e3:.2f}ms vs "
        f"{result['json_open_seconds']*1e3:.0f}ms), "
        f"identical candidates",
        metrics=result,
    )
    assert result["open_speedup"] >= 50.0


@pytest.mark.benchmark(group="e9-index-store")
def test_e9_edit_delta(benchmark):
    result = benchmark.pedantic(
        lambda: measure_edit_delta(400), rounds=1, iterations=1,
    )
    report(
        "E9 edit delta",
        "no paper claim (storage engine)",
        f"1% edit re-evaluates "
        f"{result['chunks_reevaluated']}/{result['chunks_total']} "
        f"chunks ({result['reevaluated_fraction']:.2%}), delta "
        f"{result['delta_speedup']:.1f}x faster than full rebuild, "
        f"identical results",
        metrics=result,
    )
    assert result["reevaluated_fraction"] <= 0.05
    assert result["chunks_reevaluated"] >= result["documents_edited"]


# ----------------------------------------------------------------------
# CI smoke gate
# ----------------------------------------------------------------------


def run_smoke() -> int:
    """Scaled-down storage-engine regression gate for CI.

    A relaxed 10x open threshold absorbs the smaller corpus and
    runner noise; the candidate-parity and delta-equivalence
    assertions inside the helpers are exact at any scale.
    """
    failures = []

    with tempfile.TemporaryDirectory(prefix="e9-smoke-") as workdir:
        opened = measure_open(4_000, workdir, repeats=3)
    print(f"[e9-smoke] open {opened['open_speedup']:.1f}x "
          f"({opened['binary_open_seconds']*1e3:.2f}ms mmap vs "
          f"{opened['json_open_seconds']*1e3:.1f}ms JSON, "
          f"{opened['texts']} chunks)")
    if opened["open_speedup"] < 10.0:
        failures.append(
            f"open speedup {opened['open_speedup']:.1f}x < 10x"
        )

    delta = measure_edit_delta(100, sentences_per_document=8)
    print(f"[e9-smoke] edit delta re-evaluated "
          f"{delta['chunks_reevaluated']}/{delta['chunks_total']} "
          f"chunks ({delta['reevaluated_fraction']:.2%}), "
          f"{delta['tombstones']} tombstones")
    if delta["reevaluated_fraction"] > 0.05:
        failures.append(
            f"re-evaluated {delta['reevaluated_fraction']:.2%} "
            f"of chunks > 5%"
        )

    for failure in failures:
        print(f"[e9-smoke] FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("[e9-smoke] ok")
    return 1 if failures else 0


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="E9 index-storage benchmark",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="run the scaled-down CI regression gate",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        return run_smoke()
    parser.error("run under pytest for the full benchmark, "
                 "or pass --smoke")
    return 2


if __name__ == "__main__":
    sys.exit(main())
