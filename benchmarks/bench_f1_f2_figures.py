"""F1/F2 — the paper's two figures, reproduced as executable checks.

Figure 1 illustrates the shift operator: ``[2,6> >> [7,13> = [8,12>``.
Figure 2 illustrates the second requirement of the splittability
condition (Definition 5.11): when the same chunk is selected by the
splitter from two context documents, the spanner must treat the
corresponding shifted tuples identically.
"""

import pytest

from benchmarks.conftest import report
from repro.core.spans import Span, SpanTuple
from repro.core.splittability import canonical_split_spanner
from repro.spanners.regex_formulas import compile_regex_formula


@pytest.mark.benchmark(group="figures")
def test_f1_shift_operator(benchmark):
    result = benchmark.pedantic(
        lambda: Span(2, 6) >> Span(7, 13), rounds=1, iterations=1
    )
    report("F1", "[2,6> >> [7,13> = [8,12>", f"{result!r}")
    assert result == Span(8, 12)


@pytest.mark.benchmark(group="figures")
def test_f2_splittability_condition(benchmark):
    """Example 5.13's instance realizes Figure 2's scenario.

    Chunk ``bb`` is selected from both ``abb`` and ``cbb``; the
    spanner accepts the shifted tuple in one context but not the other
    — so the splittability condition fails and the canonical
    split-spanner overproduces.
    """
    alphabet = frozenset("abc")
    p = compile_regex_formula("(ab)y{b}|(c)y{b}b", alphabet)
    s = compile_regex_formula("x{.*}|.*x{bb}.*", alphabet)

    def run():
        t = SpanTuple({"y": Span(2, 3)})  # within the chunk "bb"
        s1, s2 = Span(2, 4), Span(2, 4)   # the chunk inside abb / cbb
        t1, t2 = t.shift(s1), t.shift(s2)  # both become y -> [3,4>
        in_first = t1 in p.evaluate("abb")
        in_second = t2 in p.evaluate("cbb")
        return in_first, in_second

    in_first, in_second = benchmark.pedantic(run, rounds=1, iterations=1)
    report("F2", "condition (2) violated: t1 in P(d1), t2 not in P(d2)",
           f"t1 in P(abb): {in_first}, t2 in P(cbb): {in_second}")
    assert in_first != in_second
    # Consequence: the canonical split-spanner pools both contexts.
    canonical = canonical_split_spanner(p, s)
    assert len(canonical.evaluate("bb")) == 2
