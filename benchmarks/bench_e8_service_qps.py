"""E8 — Resident serving: QPS and tail latency of the extraction service.

Not a paper experiment but the serving moral of split-correctness:
certification is expensive and *corpus-independent* (Theorem 5.1's
PSPACE procedure runs once per program), chunk results are
*context-free* and cacheable — so an extraction service that keeps one
:class:`repro.engine.ExtractionEngine` resident amortizes both across
every query it serves.  This benchmark quantifies that against the
alternative the service replaces: constructing a per-query engine
(compile + certify + evaluate) for every request.

Two sides, identical workload and identical results:

* **cold** — each query builds a fresh program and a fresh engine,
  certifies, and runs (nothing amortized, the "script per request"
  deployment);
* **warm** — one :class:`repro.serve.ExtractionService` owns one
  engine; queries are submitted from concurrent client threads through
  the admission queue, sharing the plan cache and the corpus-wide
  chunk cache.

Measured: client-observed p50/p95/p99 latency and aggregate QPS for
both sides, the service's first (cold-cache) query vs its steady
state, and a deadline-health probe — a deadline-bounded query must
surface :class:`repro.errors.DeadlineExceededError` while leaving the
shared engine fully usable (subsequent queries succeed, no leaked shm
segments after close).

Claims under test: warm p50 at least **5x** better than cold per-query
engine construction (the PR's acceptance bar), identical span results
on both sides, and a healthy engine after a deadline miss.

``python -m benchmarks.bench_e8_service_qps --smoke`` runs a
scaled-down version with a relaxed (2x) threshold as a CI gate.
"""

from __future__ import annotations

import math
import random
import sys
import threading
import time
from typing import Dict, List

import pytest

from benchmarks.conftest import report
from repro.engine import Corpus, ExtractionEngine, Program
from repro.errors import DeadlineExceededError
from repro.runtime import RegisteredSplitter
from repro.runtime.fast import FastSeparatorSplitter
from repro.serve import ExtractionService
from repro.spanners.regex_formulas import compile_regex_formula
from repro.splitters.builders import separator_splitter

ALPHABET = frozenset("ab .")

#: Delimiter-bounded a-runs — the E5/E6 extraction shape, certified
#: split-correct with respect to the token splitter.
PATTERN = (".*(\\.| )y{a+}(\\.| ).*|y{a+}(\\.| ).*"
           "|.*(\\.| )y{a+}|y{a+}")


def a_run_extractor():
    return compile_regex_formula(PATTERN, ALPHABET)


def token_registry() -> List[RegisteredSplitter]:
    return [
        RegisteredSplitter(
            "tokens", separator_splitter(ALPHABET, " ."),
            priority=1, executor=FastSeparatorSplitter(" ."),
        ),
    ]


def service_corpus(n_documents: int, tokens_per_document: int = 40,
                   seed: int = 73) -> List[str]:
    """Synthetic prose over ``{a, b}`` tokens with realistic repetition
    (a bounded token vocabulary), so the resident service's chunk
    cache has something to amortize — exactly the regime a long-lived
    endpoint sees."""
    rng = random.Random(seed)
    vocabulary = [
        "".join(rng.choice("ab") for _ in range(rng.randint(1, 6)))
        for _ in range(48)
    ]
    return [
        " ".join(rng.choice(vocabulary)
                 for _ in range(tokens_per_document)) + "."
        for _ in range(n_documents)
    ]


class SlowSpanner:
    """Deliberately slow per-chunk evaluation for the deadline probe."""

    def __init__(self, specification, delay: float = 0.02) -> None:
        self.specification = specification
        self.delay = delay

    def evaluate(self, text: str):
        time.sleep(self.delay)
        return set(self.specification.evaluate(text))


def percentile(latencies: List[float], q: float) -> float:
    ordered = sorted(latencies)
    index = min(len(ordered) - 1,
                max(0, math.ceil(q * len(ordered)) - 1))
    return ordered[index]


# ----------------------------------------------------------------------
# The two sides
# ----------------------------------------------------------------------


def run_cold(texts: List[str], n_queries: int, client_threads: int):
    """Per-query engine construction at the same offered concurrency
    as the service side: ``client_threads`` clients, each building a
    fresh program and a fresh engine (compile + certify + run) for
    every request — the "script per request" deployment."""
    latencies: List[float] = []
    results: List[Dict[str, object]] = []
    lock = threading.Lock()
    per_thread = max(1, n_queries // client_threads)

    def client() -> None:
        for _ in range(per_thread):
            start = time.perf_counter()
            engine = ExtractionEngine(token_registry(), batch_size=16)
            program = Program(a_run_extractor(), name="a-runs")
            result = engine.run(Corpus.from_texts(texts), program)
            elapsed = time.perf_counter() - start
            with lock:
                latencies.append(elapsed)
                results.append(result.by_document)

    started = time.perf_counter()
    threads = [threading.Thread(target=client)
               for _ in range(client_threads)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall_seconds = time.perf_counter() - started
    assert all(by_document == results[0] for by_document in results)
    return latencies, wall_seconds, results[0]


def run_warm(texts: List[str], n_queries: int, client_threads: int):
    """One resident service, ``client_threads`` concurrent clients.

    Returns client-observed latencies (excluding the first query,
    reported separately as the cold-cache cost), the aggregate
    wall-clock of the concurrent phase, and the final result for the
    agreement check.
    """
    service = ExtractionService(
        ExtractionEngine(token_registry(), batch_size=16),
        program=Program(a_run_extractor(), name="a-runs"),
        max_queue=max(64, n_queries + client_threads),
    )
    with service:
        start = time.perf_counter()
        first = service.extract(texts)
        first_query_seconds = time.perf_counter() - start

        latencies: List[float] = []
        lock = threading.Lock()
        per_thread = max(1, n_queries // client_threads)

        def client() -> None:
            for _ in range(per_thread):
                begin = time.perf_counter()
                result = service.extract(texts)
                elapsed = time.perf_counter() - begin
                with lock:
                    latencies.append(elapsed)
                assert result.by_document == first.by_document

        started = time.perf_counter()
        threads = [threading.Thread(target=client)
                   for _ in range(client_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall_seconds = time.perf_counter() - started
        stats = service.engine_stats()
    return {
        "latencies": latencies,
        "wall_seconds": wall_seconds,
        "first_query_seconds": first_query_seconds,
        "by_document": first.by_document,
        "stats": stats,
    }


def deadline_health_probe(workers: int = 2) -> Dict[str, object]:
    """A deadline-bounded query must fail typed and leave the shared
    engine healthy: the next query succeeds, and closing the service
    leaks no shm segments."""
    from repro.automata import shm

    baseline_segments = set(shm.leaked_segments())
    specification = a_run_extractor()
    slow = Program(SlowSpanner(specification, delay=0.03),
                   specification, name="slow")
    texts = [f"a{'b' * i} aa" for i in range(8)]
    service = ExtractionService(
        ExtractionEngine(token_registry(), workers=workers,
                         batch_size=2),
        program=slow,
    )
    missed = False
    with service:
        try:
            service.extract(texts, deadline=0.05)
        except DeadlineExceededError:
            missed = True
        after = service.extract(
            texts, program=Program(specification, name="a-runs"))
        reference = ExtractionEngine(token_registry()).run(
            Corpus.from_texts(texts),
            Program(a_run_extractor(), name="ref"))
    leaked = set(shm.leaked_segments()) - baseline_segments
    return {
        "deadline_missed": missed,
        "subsequent_query_ok":
            after.by_document == reference.by_document,
        "leaked_segments": sorted(leaked),
    }


# ----------------------------------------------------------------------
# Shared measurement
# ----------------------------------------------------------------------


def measure(n_documents: int, n_queries: int,
            client_threads: int = 4) -> Dict[str, object]:
    texts = service_corpus(n_documents)

    cold_latencies, cold_wall, cold_results = run_cold(
        texts, n_queries, client_threads)
    warm = run_warm(texts, n_queries, client_threads)
    assert warm["by_document"] == cold_results

    health = deadline_health_probe()
    assert health["deadline_missed"]
    assert health["subsequent_query_ok"]
    assert not health["leaked_segments"]

    warm_latencies = warm["latencies"]
    return {
        "documents": n_documents,
        "queries": len(warm_latencies),
        "client_threads": client_threads,
        "cold_p50": percentile(cold_latencies, 0.50),
        "cold_p95": percentile(cold_latencies, 0.95),
        "cold_p99": percentile(cold_latencies, 0.99),
        "cold_qps": len(cold_latencies) / max(cold_wall, 1e-9),
        "warm_p50": percentile(warm_latencies, 0.50),
        "warm_p95": percentile(warm_latencies, 0.95),
        "warm_p99": percentile(warm_latencies, 0.99),
        "warm_qps": len(warm_latencies) / max(warm["wall_seconds"], 1e-9),
        "first_query_seconds": warm["first_query_seconds"],
        "p50_speedup": (percentile(cold_latencies, 0.50)
                        / max(percentile(warm_latencies, 0.50), 1e-9)),
        "stats": warm["stats"],
        "health": health,
    }


# ----------------------------------------------------------------------
# Premise tests and the benchmark
# ----------------------------------------------------------------------


def test_premise_deadline_probe_leaves_service_healthy():
    health = deadline_health_probe()
    assert health["deadline_missed"]
    assert health["subsequent_query_ok"]
    assert health["leaked_segments"] == []


@pytest.mark.benchmark(group="e8-service")
def test_e8_service_qps(benchmark):
    result = benchmark.pedantic(
        lambda: measure(n_documents=24, n_queries=16),
        rounds=1, iterations=1,
    )
    report(
        "E8 service",
        "no paper claim (serving layer)",
        f"warm p50 {result['warm_p50']*1e3:.2f}ms vs cold per-query "
        f"engine {result['cold_p50']*1e3:.2f}ms "
        f"({result['p50_speedup']:.1f}x), warm {result['warm_qps']:.0f} "
        f"QPS @ {result['client_threads']} clients, deadline probe "
        f"healthy",
        metrics={
            "workload": (f"{result['documents']} documents, "
                         f"{result['queries']} queries, "
                         f"{result['client_threads']} client threads"),
            "cold_p50_seconds": result["cold_p50"],
            "cold_p95_seconds": result["cold_p95"],
            "cold_p99_seconds": result["cold_p99"],
            "cold_qps": result["cold_qps"],
            "warm_p50_seconds": result["warm_p50"],
            "warm_p95_seconds": result["warm_p95"],
            "warm_p99_seconds": result["warm_p99"],
            "warm_qps": result["warm_qps"],
            "first_query_seconds": result["first_query_seconds"],
            "p50_speedup": result["p50_speedup"],
            "deadline_probe": result["health"],
        },
        stats=result["stats"],
    )
    # The acceptance bar: a resident engine beats per-query
    # construction by 5x at the median.
    assert result["p50_speedup"] >= 5.0
    assert result["warm_qps"] > result["cold_qps"]


# ----------------------------------------------------------------------
# CI smoke gate
# ----------------------------------------------------------------------


def run_smoke() -> int:
    """Scaled-down serving regression gate for CI.

    A relaxed 2x threshold absorbs runner noise; losing the residency
    speedup, result agreement, or deadline health exits nonzero and
    fails the build.
    """
    failures = []

    result = measure(n_documents=10, n_queries=8, client_threads=2)
    print(f"[e8-smoke] warm p50 {result['warm_p50']*1e3:.2f}ms vs "
          f"cold {result['cold_p50']*1e3:.2f}ms "
          f"({result['p50_speedup']:.1f}x), "
          f"warm {result['warm_qps']:.0f} QPS")
    health = result["health"]
    print(f"[e8-smoke] deadline probe: missed={health['deadline_missed']}, "
          f"recovered={health['subsequent_query_ok']}, "
          f"leaked={health['leaked_segments']}")
    if result["p50_speedup"] < 2.0:
        failures.append(
            f"warm p50 speedup {result['p50_speedup']:.2f}x < 2x")
    if result["warm_qps"] <= result["cold_qps"]:
        failures.append("resident service did not beat cold QPS")

    for failure in failures:
        print(f"[e8-smoke] FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("[e8-smoke] ok")
    return 1 if failures else 0


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="E8 service QPS/latency benchmark",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="run the scaled-down CI regression gate",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        return run_smoke()
    parser.error("run under pytest for the full benchmark, "
                 "or pass --smoke")
    return 2


if __name__ == "__main__":
    sys.exit(main())
