"""T3 — splittability for disjoint splitters (Theorem 5.15).

Times the full pipeline (cover condition, canonical split-spanner
construction of Proposition 5.9, and the equivalence test of Lemma
5.12) on the Theorem 5.15 reduction family and on a realistic
extractor/tokenizer pair; verifies the known answers.
"""

import time

import pytest

from benchmarks.conftest import report
from repro.core.splittability import canonical_split_spanner, is_splittable
from repro.reductions import splittability_instance
from repro.spanners.regex_formulas import compile_regex_formula
from repro.splitters.builders import record_splitter

SIGMA = ["b", "c"]


@pytest.mark.benchmark(group="t3-splittability")
def test_t3_reduction_family(benchmark):
    cases = [
        ("b*", "(b|c)*", True),
        ("(b|c)*", "b*", False),
        ("(bb)*", "b*", True),
        ("b*c", "b*(b|c)", True),
    ]

    def sweep():
        rows = []
        for r1, r2, expected in cases:
            p, s = splittability_instance(r1, r2, SIGMA)
            start = time.perf_counter()
            answer = is_splittable(p, s)
            rows.append((r1, r2, answer, expected,
                         time.perf_counter() - start))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for r1, r2, answer, expected, _elapsed in rows:
        assert answer == expected, (r1, r2)
    text = ", ".join(f"({r1}<={r2}): {t*1e3:.0f}ms"
                     for r1, r2, _a, _e, t in rows)
    report("T3", "splittability PSPACE-complete for disjoint splitters",
           text)


@pytest.mark.benchmark(group="t3-splittability")
def test_t3_realistic_pipeline(benchmark):
    alphabet = frozenset("Gl#")
    p = compile_regex_formula("(.*\\#)?y{G}(l*)((\\#).*)?", alphabet)
    records = record_splitter(alphabet, "#")

    def run():
        answer = is_splittable(p, records)
        canonical = canonical_split_spanner(p, records)
        return answer, canonical.state_count()

    answer, states = benchmark.pedantic(run, rounds=1, iterations=1)
    report("T3 (HTTP)", "request-line extractor splittable by records",
           f"splittable={answer}, canonical split-spanner states={states}")
    assert answer
