"""E4 — Amazon Fine Food reviews: negative-sentiment targets.

Paper claim: extracting targets of negative sentiment from ~570,000
reviews, splitting reviews into sentences sped Spark evaluation up by
4.16x with the same parallelism — the largest effect in the paper,
attributed to scheduling over many small tasks.

Reproduction: review-shaped corpus with a strongly skewed length
distribution (a few very long reviews dominate, as in real review
data); sentence-task plan vs whole-review plan on the 5-worker
simulated pool.
"""

import pytest

from benchmarks.conftest import report
from benchmarks.corpora import review_corpus
from benchmarks.workloads import SentimentTargetExtractor, sentence_splitter_fast
from repro.runtime.executor import map_corpus_sequential
from repro.runtime.simulation import simulate_corpus_speedup

WORKERS = 5


def _skewed_reviews():
    # Review platforms have extreme length skew; emulate it by mixing
    # many short reviews with a handful of essays.
    short = review_corpus(n_reviews=220, mean_sentences=3, seed=41)
    long = review_corpus(n_reviews=4, mean_sentences=220, seed=43)
    # Long reviews arrive late: the worst case for coarse scheduling.
    return short[:180] + long + short[180:]


CORPUS = _skewed_reviews()


def test_split_preserves_output():
    extractor = SentimentTargetExtractor(work=1)
    sentences = sentence_splitter_fast()
    sample = CORPUS[:20]
    whole = map_corpus_sequential(extractor, sample)
    split = map_corpus_sequential(extractor, sample, sentences)
    assert whole == split
    assert any(whole)


@pytest.mark.benchmark(group="e4-sentiment")
def test_e4_sentiment_targets(benchmark):
    extractor = SentimentTargetExtractor(work=60)
    result = benchmark.pedantic(
        lambda: simulate_corpus_speedup(
            extractor, CORPUS, sentence_splitter_fast(), workers=WORKERS,
            repeats=2, chunksize=8,
        ),
        rounds=1, iterations=1,
    )
    report("E4", "4.16x (5-node Spark, ~570k Amazon reviews)",
           f"{result.speedup:.2f}x (5 simulated workers, "
           f"{result.baseline_tasks} -> {result.split_tasks} tasks)",
           metrics={
               "workload": "review-shaped sentiment-target extraction",
               "speedup": result.speedup,
               "baseline_seconds": result.baseline_makespan,
               "split_seconds": result.split_makespan,
               "baseline_tasks": result.baseline_tasks,
               "split_tasks": result.split_tasks,
           })
    assert result.speedup > 1.5
