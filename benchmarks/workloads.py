"""Extractors and certification helpers shared by the benchmarks.

Each workload pairs a *fast executable extractor* (Python ``re`` based,
what a production system would run) with a *miniature VSet-automaton
specification* over a reduced alphabet.  The framework's decision
procedures certify split-correctness on the specification; execution
and timing happen on the fast path.  Tests in ``tests/test_runtime.py``
validate that fast implementations agree with automaton specifications
on sampled documents.
"""

from __future__ import annotations

import re
from typing import Callable, List, Set

from repro.core.spans import Span, SpanTuple
from repro.runtime.fast import FastSentenceSplitter, FastSeparatorSplitter


class TokenNgramExtractor:
    """Extract all token N-grams, with a tunable per-window cost.

    ``work`` emulates the per-window feature computation of a real IE
    function (the paper's N-gram pipelines feed windows into feature
    extraction); each window is hashed ``work`` times.
    """

    def __init__(self, n: int, work: int = 8) -> None:
        self.n = n
        self.work = work
        self._tokens = FastSeparatorSplitter(" ")

    def evaluate(self, document: str) -> Set[SpanTuple]:
        tokens = self._tokens.splits(document)
        results = set()
        for i in range(len(tokens) - self.n + 1):
            span = Span(tokens[i].begin, tokens[i + self.n - 1].end)
            window = span.extract(document)
            digest = 0
            for k in range(self.work):
                # hash a fresh object every round: real per-feature cost
                # (str.__hash__ alone is cached by the interpreter).
                digest ^= hash((window, k, digest))
            results.add(SpanTuple({"x": span}))
        return results


def _per_token_tagging(document: str, work: int) -> int:
    """Emulate the per-token cost of an NLP pipeline (POS/NER tagging).

    Real relation and sentiment extractors spend their time tagging
    every token before matching patterns; the cost is proportional to
    the token count, which makes it invariant under sentence splitting.
    """
    digest = 0
    for token in document.split():
        for k in range(work):
            digest ^= hash((token, k, digest))
    return digest


class EventExtractor:
    """Financial-transaction events: ``Org pays Org`` inside a sentence.

    ``work`` controls the per-token tagging cost emulating the real
    relation extractor the paper ran on Reuters.
    """

    PATTERN = re.compile(r"(?P<src>[A-Z][a-z]+) pays (?P<dst>[A-Z][a-z]+)")

    def __init__(self, work: int = 6) -> None:
        self.work = work

    def evaluate(self, document: str) -> Set[SpanTuple]:
        _per_token_tagging(document, self.work)
        results = set()
        for match in self.PATTERN.finditer(document):
            results.add(SpanTuple({
                "src": Span(match.start("src") + 1, match.end("src") + 1),
                "dst": Span(match.start("dst") + 1, match.end("dst") + 1),
            }))
        return results


class SentimentTargetExtractor:
    """Targets of negative sentiment: ``the X is bad|awful|terrible``."""

    PATTERN = re.compile(
        r"the (?P<target>[a-z]+) is (?:bad|awful|terrible)"
    )

    def __init__(self, work: int = 6) -> None:
        self.work = work

    def evaluate(self, document: str) -> Set[SpanTuple]:
        _per_token_tagging(document, self.work)
        results = set()
        for match in self.PATTERN.finditer(document):
            results.add(SpanTuple({
                "target": Span(match.start("target") + 1,
                               match.end("target") + 1),
            }))
        return results


def certify_sentence_local_extractor() -> bool:
    """Certify the benchmark premise on a miniature specification.

    The fast extractors above are sentence-local by construction (the
    corpus generators never emit cross-sentence events).  The
    certification builds the miniature analogue — an extractor of
    delimiter-bounded ``a``-runs — and runs the *actual* decision
    procedure for self-splittability by the sentence splitter over the
    filtered (well-formed) documents.
    """
    from repro.automata.regex import regex_to_nfa
    from repro.core.filters import self_splittable_with_filter
    from repro.spanners.algebra import restrict_to_language
    from repro.spanners.regex_formulas import compile_regex_formula
    from repro.splitters.builders import sentence_splitter

    alphabet = frozenset("ab .")
    extractor = compile_regex_formula(
        ".*(\\.| )y{a+}(\\.| ).*|y{a+}(\\.| ).*|.*(\\.| )y{a+}|y{a+}",
        alphabet,
    )
    well_formed = regex_to_nfa("((a|b)(a|b| )*)?\\.", alphabet)
    checked = restrict_to_language(extractor, well_formed)
    return self_splittable_with_filter(checked, sentence_splitter(alphabet))


def sentence_splitter_fast() -> FastSentenceSplitter:
    return FastSentenceSplitter()
