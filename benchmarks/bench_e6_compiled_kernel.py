"""E6 — Compiled automaton kernel: bitset IR vs the interpreter.

Not a paper experiment but the substrate every other benchmark stands
on: PR 2 lowers all automaton execution onto the integer/bitset kernel
of :mod:`repro.automata.compiled` (dense state ids, precomputed
epsilon closures, table-lookup steps, lazy-DFA memoization), with
lowering pinned at certify time so chunk runners never re-compile.

This benchmark measures the kernel against the dict-of-sets
interpreted path it replaced (kept as
``VSetAutomaton.evaluate_interpreted``) on the two workloads the
acceptance criteria name:

* the **E1 n-gram workload** — token-bigram extraction by VSet-
  automaton over the prose alphabet;
* the **E5 engine workload** — the a-run extractor run corpus-wide by
  :class:`repro.engine.ExtractionEngine`, where only the chunk
  evaluation path differs between the two engines (both get identical
  split plans and chunk-cache dedup).

Claims under test: >= 3x speedup on both workloads, identical results,
and compiled artifacts produced exactly once per certified plan even
across repeated runs (``EngineStats.artifacts_compiled``).

``python -m benchmarks.bench_e6_compiled_kernel --smoke`` runs a
scaled-down version with a relaxed (2x) threshold as a CI regression
gate.
"""

from __future__ import annotations

import sys
from typing import List

import pytest

from benchmarks.conftest import report, timed
from benchmarks.corpora import boilerplate_corpus
from repro.engine import ExtractionEngine, Program
from repro.obs import kernel_metrics
from repro.runtime import RegisteredSplitter
from repro.runtime.fast import FastSeparatorSplitter
from repro.spanners.regex_formulas import compile_regex_formula
from repro.spanners.vset_automaton import VSetAutomaton
from repro.splitters.builders import separator_splitter, token_ngram_splitter

ALPHABET = frozenset("abcdefgh .")


class InterpretedSpanner:
    """Forces the pre-kernel dict-of-sets evaluation path.

    Presents the usual ``evaluate`` interface (so the engine treats it
    like any fast executable) but runs
    :meth:`repro.spanners.vset_automaton.VSetAutomaton.
    evaluate_interpreted` on every chunk — the baseline the kernel is
    measured against.
    """

    def __init__(self, specification: VSetAutomaton) -> None:
        self.specification = specification

    def svars(self):
        return self.specification.svars()

    def evaluate(self, document: str):
        return self.specification.evaluate_interpreted(document)


def ngram_extractor(n: int = 2) -> VSetAutomaton:
    """The E1 workload: token n-grams as a VSet-automaton."""
    return token_ngram_splitter(ALPHABET, n, "x")


def arun_extractor() -> VSetAutomaton:
    """The E5 workload: delimiter-bounded ``a``-runs."""
    return compile_regex_formula(
        ".*(\\.| )y{a+}(\\.| ).*|y{a+}(\\.| ).*|.*(\\.| )y{a+}|y{a+}",
        ALPHABET,
    )


def sentence_registry() -> List[RegisteredSplitter]:
    """Sentence-level chunks: big enough that chunk evaluation (what
    the kernel accelerates) dominates splitting/cache bookkeeping."""
    return [
        RegisteredSplitter(
            "sentences", separator_splitter(ALPHABET, "."),
            priority=1, executor=FastSeparatorSplitter("."),
        ),
    ]


def ngram_corpus(n_documents: int) -> List[str]:
    return boilerplate_corpus(
        n_documents=n_documents, sentences_per_document=2,
        distinct_sentences=max(4, n_documents // 2), seed=29,
    )


def engine_corpus(n_documents: int) -> List[str]:
    # Enough distinct sentences that chunk evaluation (the kernel's
    # territory) outweighs the splitting/merging work that is
    # identical on both sides of the comparison.
    return boilerplate_corpus(
        n_documents=n_documents, sentences_per_document=8,
        distinct_sentences=4 * n_documents, seed=31,
    )


# ----------------------------------------------------------------------
# Shared measurement
# ----------------------------------------------------------------------


def measure_ngram(n_documents: int, repeats: int = 2):
    """(speedup, compiled seconds, interpreted seconds) on E1 bigrams."""
    extractor = ngram_extractor(2)
    docs = ngram_corpus(n_documents)
    extractor.compiled()  # lower once, outside the timed region
    compiled_results = [extractor.evaluate(d) for d in docs]
    interpreted_results = [extractor.evaluate_interpreted(d) for d in docs]
    assert compiled_results == interpreted_results
    compiled = timed(lambda: [extractor.evaluate(d) for d in docs],
                     repeats=repeats)
    interpreted = timed(
        lambda: [extractor.evaluate_interpreted(d) for d in docs],
        repeats=repeats,
    )
    return interpreted / max(compiled, 1e-9), compiled, interpreted


def measure_engine(n_documents: int):
    """(speedup, compiled stats, interpreted stats) on the E5 engine
    workload; also asserts result equality and artifacts-once."""
    corpus = engine_corpus(n_documents)
    specification = arun_extractor()

    kernel_engine = ExtractionEngine(sentence_registry(), workers=0,
                                     batch_size=8)
    kernel_program = Program(specification, name="kernel")
    kernel_result = kernel_engine.run(corpus, kernel_program)
    kernel_engine.run(corpus, kernel_program)  # replay: no re-lowering
    kernel_stats = kernel_engine.stats()

    interpreted_engine = ExtractionEngine(sentence_registry(), workers=0,
                                          batch_size=8)
    interpreted_program = Program(
        InterpretedSpanner(specification), specification=specification,
        name="interpreted",
    )
    interpreted_result = interpreted_engine.run(corpus, interpreted_program)
    interpreted_stats = interpreted_engine.stats()

    assert kernel_result.by_document == interpreted_result.by_document
    # Compiled artifacts are produced exactly once per certified plan,
    # even across repeated runs; the interpreted engine never lowers.
    assert kernel_stats.certifications == 1
    assert kernel_stats.artifacts_compiled == 1
    assert interpreted_stats.artifacts_compiled == 0
    # Both engines did identical splitting/dedup work; only the chunk
    # evaluation path differs.
    assert kernel_stats.chunks_evaluated == interpreted_stats.chunks_evaluated
    speedup = (interpreted_stats.extraction_seconds
               / max(kernel_stats.extraction_seconds, 1e-9))
    return speedup, kernel_stats, interpreted_stats


# ----------------------------------------------------------------------
# Benchmarks
# ----------------------------------------------------------------------


def test_premise_compiled_agrees_on_both_workloads():
    extractor = ngram_extractor(2)
    arun = arun_extractor()
    for document in ngram_corpus(4)[:2] + engine_corpus(2)[:1]:
        assert extractor.evaluate(document) == \
            extractor.evaluate_interpreted(document)
        assert arun.evaluate(document) == arun.evaluate_interpreted(document)


@pytest.mark.benchmark(group="e6-kernel")
def test_e6_ngram_kernel_speedup(benchmark):
    speedup, compiled, interpreted = benchmark.pedantic(
        lambda: measure_ngram(n_documents=10), rounds=1, iterations=1,
    )
    report(
        "E6 n-gram",
        "no paper claim (kernel refactor)",
        f"{speedup:.2f}x vs interpreted VSA evaluation "
        f"({compiled * 1e3:.0f}ms vs {interpreted * 1e3:.0f}ms)",
        metrics={
            "workload": "E1 token bigrams, 10 boilerplate documents",
            "speedup": speedup,
            "compiled_seconds": compiled,
            "interpreted_seconds": interpreted,
            # No engine in this workload: the kernel's process-global
            # registry is the stats surface instead.
            "kernel_lowerings": kernel_metrics().value("kernel.lowerings"),
            "kernel_states_lowered": kernel_metrics().value(
                "kernel.states_lowered"),
        },
    )
    assert speedup >= 3.0


@pytest.mark.benchmark(group="e6-kernel")
def test_e6_engine_kernel_speedup(benchmark):
    speedup, kernel_stats, interpreted_stats = benchmark.pedantic(
        lambda: measure_engine(n_documents=24), rounds=1, iterations=1,
    )
    report(
        "E6 engine",
        "no paper claim (kernel refactor)",
        f"{speedup:.2f}x vs interpreted chunk runner "
        f"({kernel_stats.extraction_seconds:.3f}s vs "
        f"{interpreted_stats.extraction_seconds:.3f}s), "
        f"artifacts compiled once "
        f"({kernel_stats.artifacts_compiled})",
        metrics={
            "workload": "E5 a-run extractor, 24 boilerplate documents",
            "speedup": speedup,
            "kernel_seconds": kernel_stats.extraction_seconds,
            "interpreted_seconds": interpreted_stats.extraction_seconds,
        },
        stats=kernel_stats,
    )
    assert speedup >= 3.0


# ----------------------------------------------------------------------
# CI smoke gate
# ----------------------------------------------------------------------


def run_smoke() -> int:
    """Scaled-down kernel regression gate for CI.

    Relaxed 2x thresholds absorb runner noise; a kernel regression
    (agreement failure, re-lowering, or loss of the speedup) exits
    nonzero and fails the build.
    """
    failures = []

    ngram_speedup, compiled, interpreted = measure_ngram(
        n_documents=6, repeats=1
    )
    print(f"[e6-smoke] n-gram: {ngram_speedup:.2f}x "
          f"({compiled * 1e3:.0f}ms vs {interpreted * 1e3:.0f}ms)")
    if ngram_speedup < 2.0:
        failures.append(
            f"n-gram kernel speedup {ngram_speedup:.2f}x < 2x"
        )

    engine_speedup, kernel_stats, _ = measure_engine(n_documents=8)
    print(f"[e6-smoke] engine: {engine_speedup:.2f}x, "
          f"artifacts compiled {kernel_stats.artifacts_compiled}, "
          f"certifications {kernel_stats.certifications}")
    if engine_speedup < 2.0:
        failures.append(
            f"engine kernel speedup {engine_speedup:.2f}x < 2x"
        )

    for failure in failures:
        print(f"[e6-smoke] FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("[e6-smoke] ok")
    return 1 if failures else 0


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="E6 compiled-kernel benchmark",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="run the scaled-down CI regression gate",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        return run_smoke()
    parser.error("run under pytest for the full benchmark, "
                 "or pass --smoke")
    return 2


if __name__ == "__main__":
    sys.exit(main())
