"""E6 — Compiled automaton kernel: bitset IR vs the interpreter.

Not a paper experiment but the substrate every other benchmark stands
on: PR 2 lowers all automaton execution onto the integer/bitset kernel
of :mod:`repro.automata.compiled` (dense state ids, precomputed
epsilon closures, table-lookup steps, lazy-DFA memoization), with
lowering pinned at certify time so chunk runners never re-compile.

This benchmark measures the kernel against the dict-of-sets
interpreted path it replaced (kept as
``VSetAutomaton.evaluate_interpreted``) on the two workloads the
acceptance criteria name:

* the **E1 n-gram workload** — token-bigram extraction by VSet-
  automaton over the prose alphabet;
* the **E5 engine workload** — the a-run extractor run corpus-wide by
  :class:`repro.engine.ExtractionEngine`, where only the chunk
  evaluation path differs between the two engines (both get identical
  split plans and chunk-cache dedup).

PR 7 adds the **byte-sweep workload**: the kernel-v2 byte-table
reverse sweep (``suffix_acceptance`` on the ``v2-bytes`` tier) against
both the v1 reference sweep and the masked-integer sweep on the same
artifact, with throughput reported in MB/s alongside the speedup.

Claims under test: >= 3x speedup on the n-gram/engine workloads,
>= 5x on the byte-table sweep, identical results on every tier, and
compiled artifacts produced exactly once per certified plan even
across repeated runs (``EngineStats.artifacts_compiled``).

``python -m benchmarks.bench_e6_compiled_kernel --smoke`` runs a
scaled-down version with relaxed thresholds as a CI regression gate;
it also covers the ``workers=2`` shared-memory attach path (parity
with the in-process engine, zero leaked ``/dev/shm`` segments).
"""

from __future__ import annotations

import sys
from typing import List

import pytest

from benchmarks.conftest import report, timed
from benchmarks.corpora import boilerplate_corpus
from repro.automata import shm
from repro.automata.compiled import compile_vset_automaton
from repro.engine import ExtractionEngine, Program
from repro.obs import kernel_metrics
from repro.runtime import RegisteredSplitter
from repro.runtime.fast import FastSeparatorSplitter
from repro.spanners.regex_formulas import compile_regex_formula
from repro.spanners.vset_automaton import VSetAutomaton
from repro.splitters.builders import separator_splitter, token_ngram_splitter

ALPHABET = frozenset("abcdefgh .")


class InterpretedSpanner:
    """Forces the pre-kernel dict-of-sets evaluation path.

    Presents the usual ``evaluate`` interface (so the engine treats it
    like any fast executable) but runs
    :meth:`repro.spanners.vset_automaton.VSetAutomaton.
    evaluate_interpreted` on every chunk — the baseline the kernel is
    measured against.
    """

    def __init__(self, specification: VSetAutomaton) -> None:
        self.specification = specification

    def svars(self):
        return self.specification.svars()

    def evaluate(self, document: str):
        return self.specification.evaluate_interpreted(document)


def ngram_extractor(n: int = 2) -> VSetAutomaton:
    """The E1 workload: token n-grams as a VSet-automaton."""
    return token_ngram_splitter(ALPHABET, n, "x")


def arun_extractor() -> VSetAutomaton:
    """The E5 workload: delimiter-bounded ``a``-runs."""
    return compile_regex_formula(
        ".*(\\.| )y{a+}(\\.| ).*|y{a+}(\\.| ).*|.*(\\.| )y{a+}|y{a+}",
        ALPHABET,
    )


def sentence_registry() -> List[RegisteredSplitter]:
    """Sentence-level chunks: big enough that chunk evaluation (what
    the kernel accelerates) dominates splitting/cache bookkeeping."""
    return [
        RegisteredSplitter(
            "sentences", separator_splitter(ALPHABET, "."),
            priority=1, executor=FastSeparatorSplitter("."),
        ),
    ]


def ngram_corpus(n_documents: int) -> List[str]:
    return boilerplate_corpus(
        n_documents=n_documents, sentences_per_document=2,
        distinct_sentences=max(4, n_documents // 2), seed=29,
    )


def engine_corpus(n_documents: int) -> List[str]:
    # Enough distinct sentences that chunk evaluation (the kernel's
    # territory) outweighs the splitting/merging work that is
    # identical on both sides of the comparison.
    return boilerplate_corpus(
        n_documents=n_documents, sentences_per_document=8,
        distinct_sentences=4 * n_documents, seed=31,
    )


# ----------------------------------------------------------------------
# Shared measurement
# ----------------------------------------------------------------------


def measure_ngram(n_documents: int, repeats: int = 2):
    """(speedup, compiled seconds, interpreted seconds) on E1 bigrams."""
    extractor = ngram_extractor(2)
    docs = ngram_corpus(n_documents)
    extractor.compiled()  # lower once, outside the timed region
    compiled_results = [extractor.evaluate(d) for d in docs]
    interpreted_results = [extractor.evaluate_interpreted(d) for d in docs]
    assert compiled_results == interpreted_results
    compiled = timed(lambda: [extractor.evaluate(d) for d in docs],
                     repeats=repeats)
    interpreted = timed(
        lambda: [extractor.evaluate_interpreted(d) for d in docs],
        repeats=repeats,
    )
    return interpreted / max(compiled, 1e-9), compiled, interpreted


def measure_engine(n_documents: int):
    """(speedup, compiled stats, interpreted stats) on the E5 engine
    workload; also asserts result equality and artifacts-once."""
    corpus = engine_corpus(n_documents)
    specification = arun_extractor()

    kernel_engine = ExtractionEngine(sentence_registry(), workers=0,
                                     batch_size=8)
    kernel_program = Program(specification, name="kernel")
    kernel_result = kernel_engine.run(corpus, kernel_program)
    kernel_engine.run(corpus, kernel_program)  # replay: no re-lowering
    kernel_stats = kernel_engine.stats()

    interpreted_engine = ExtractionEngine(sentence_registry(), workers=0,
                                          batch_size=8)
    interpreted_program = Program(
        InterpretedSpanner(specification), specification=specification,
        name="interpreted",
    )
    interpreted_result = interpreted_engine.run(corpus, interpreted_program)
    interpreted_stats = interpreted_engine.stats()

    assert kernel_result.by_document == interpreted_result.by_document
    # Compiled artifacts are produced exactly once per certified plan,
    # even across repeated runs; the interpreted engine never lowers.
    assert kernel_stats.certifications == 1
    assert kernel_stats.artifacts_compiled == 1
    assert interpreted_stats.artifacts_compiled == 0
    # Both engines did identical splitting/dedup work; only the chunk
    # evaluation path differs.
    assert kernel_stats.chunks_evaluated == interpreted_stats.chunks_evaluated
    speedup = (interpreted_stats.extraction_seconds
               / max(kernel_stats.extraction_seconds, 1e-9))
    return speedup, kernel_stats, interpreted_stats


def measure_sweep(n_documents: int, repeats: int = 3) -> dict:
    """The byte-table sweep workload: ``suffix_acceptance`` over the
    a-run artifact on every tier, byte-identical tables required.

    Returns speedups of the v2 byte sweep over the v1 reference sweep
    and over the masked-integer sweep, plus v2 throughput in MB/s
    (latin-1: one byte per character).
    """
    specification = arun_extractor()
    v2 = compile_vset_automaton(specification)
    v1 = compile_vset_automaton(specification, byte_tables=False)
    assert v2.kernel_tier == "v2-bytes"
    assert v1.kernel_tier == "v1-int"
    docs = engine_corpus(n_documents)
    for document in docs:
        expected = v1.suffix_acceptance_v1(document)
        assert v2.suffix_acceptance(document) == expected
        assert v1.suffix_acceptance(document) == expected
    total_bytes = sum(len(document) for document in docs)
    bytes_seconds = timed(
        lambda: [v2.suffix_acceptance(d) for d in docs], repeats=repeats
    )
    int_seconds = timed(
        lambda: [v1.suffix_acceptance(d) for d in docs], repeats=repeats
    )
    v1_seconds = timed(
        lambda: [v1.suffix_acceptance_v1(d) for d in docs],
        repeats=repeats,
    )
    return {
        "documents": n_documents,
        "total_bytes": total_bytes,
        "bytes_seconds": bytes_seconds,
        "int_seconds": int_seconds,
        "v1_seconds": v1_seconds,
        "speedup_vs_v1": v1_seconds / max(bytes_seconds, 1e-9),
        "speedup_vs_int": int_seconds / max(bytes_seconds, 1e-9),
        "mb_per_second": total_bytes / max(bytes_seconds, 1e-9) / 1e6,
        "table_bytes": v2.byte_sweeper.table_bytes(),
    }


# ----------------------------------------------------------------------
# Benchmarks
# ----------------------------------------------------------------------


def test_premise_compiled_agrees_on_both_workloads():
    extractor = ngram_extractor(2)
    arun = arun_extractor()
    for document in ngram_corpus(4)[:2] + engine_corpus(2)[:1]:
        assert extractor.evaluate(document) == \
            extractor.evaluate_interpreted(document)
        assert arun.evaluate(document) == arun.evaluate_interpreted(document)


@pytest.mark.benchmark(group="e6-kernel")
def test_e6_ngram_kernel_speedup(benchmark):
    speedup, compiled, interpreted = benchmark.pedantic(
        lambda: measure_ngram(n_documents=10), rounds=1, iterations=1,
    )
    report(
        "E6 n-gram",
        "no paper claim (kernel refactor)",
        f"{speedup:.2f}x vs interpreted VSA evaluation "
        f"({compiled * 1e3:.0f}ms vs {interpreted * 1e3:.0f}ms)",
        metrics={
            "workload": "E1 token bigrams, 10 boilerplate documents",
            "speedup": speedup,
            "compiled_seconds": compiled,
            "interpreted_seconds": interpreted,
            # No engine in this workload: the kernel's process-global
            # registry is the stats surface instead.
            "kernel_lowerings": kernel_metrics().value("kernel.lowerings"),
            "kernel_states_lowered": kernel_metrics().value(
                "kernel.states_lowered"),
        },
    )
    assert speedup >= 3.0


@pytest.mark.benchmark(group="e6-kernel")
def test_e6_engine_kernel_speedup(benchmark):
    speedup, kernel_stats, interpreted_stats = benchmark.pedantic(
        lambda: measure_engine(n_documents=24), rounds=1, iterations=1,
    )
    report(
        "E6 engine",
        "no paper claim (kernel refactor)",
        f"{speedup:.2f}x vs interpreted chunk runner "
        f"({kernel_stats.extraction_seconds:.3f}s vs "
        f"{interpreted_stats.extraction_seconds:.3f}s), "
        f"artifacts compiled once "
        f"({kernel_stats.artifacts_compiled})",
        metrics={
            "workload": "E5 a-run extractor, 24 boilerplate documents",
            "speedup": speedup,
            "kernel_seconds": kernel_stats.extraction_seconds,
            "interpreted_seconds": interpreted_stats.extraction_seconds,
        },
        stats=kernel_stats,
    )
    assert speedup >= 3.0


@pytest.mark.benchmark(group="e6-kernel")
def test_e6_byte_sweep_speedup(benchmark):
    sweep = benchmark.pedantic(
        lambda: measure_sweep(n_documents=24), rounds=1, iterations=1,
    )
    report(
        "E6 byte-sweep",
        "no paper claim (kernel v2)",
        f"{sweep['speedup_vs_v1']:.1f}x vs v1 reference sweep, "
        f"{sweep['speedup_vs_int']:.1f}x vs masked-int sweep, "
        f"{sweep['mb_per_second']:.1f} MB/s",
        metrics={
            "workload": (
                "suffix_acceptance, a-run artifact, "
                f"{sweep['documents']} boilerplate documents"
            ),
            "speedup": sweep["speedup_vs_v1"],
            "speedup_vs_int": sweep["speedup_vs_int"],
            "mb_per_second": sweep["mb_per_second"],
            "total_bytes": sweep["total_bytes"],
            "bytes_seconds": sweep["bytes_seconds"],
            "int_seconds": sweep["int_seconds"],
            "v1_seconds": sweep["v1_seconds"],
            "table_bytes": sweep["table_bytes"],
            "kernel_bytes_swept": kernel_metrics().value(
                "kernel.bytes_swept"),
            "kernel_table_bytes": kernel_metrics().value(
                "kernel.table_bytes"),
        },
    )
    assert sweep["speedup_vs_v1"] >= 5.0


# ----------------------------------------------------------------------
# CI smoke gate
# ----------------------------------------------------------------------


def smoke_shm_workers() -> List[str]:
    """The ``workers=2`` shared-memory attach gate.

    A two-worker engine must agree with the in-process, shm-less
    engine on the v2 kernel, with every sampled worker attached from
    shared memory and no ``/dev/shm`` segment left after close.
    """
    if not shm.available():  # pragma: no cover - non-POSIX fallback
        print("[e6-smoke] shm unavailable; skipping workers gate")
        return []
    failures = []
    corpus = engine_corpus(6)
    specification = arun_extractor()
    assert specification.compiled().kernel_tier == "v2-bytes"

    pooled = ExtractionEngine(sentence_registry(), workers=2)
    pooled_result = pooled.run(corpus, Program(specification, name="shm"))
    segment = pooled.scheduler.shm_segment_name()
    status = pooled.scheduler.worker_shm_status()
    pooled.close()

    baseline = ExtractionEngine(sentence_registry(), workers=0,
                                use_shm=False)
    baseline_result = baseline.run(
        corpus, Program(specification, name="baseline")
    )
    baseline.close()

    attached = sorted({pid for pid, count in status if count >= 1})
    print(f"[e6-smoke] shm: segment={segment}, "
          f"workers attached={attached}")
    if segment is None:
        failures.append("workers=2 engine published no shm segment")
    if not status or any(count < 1 for _pid, count in status):
        failures.append("a pool worker evaluated without an shm attach")
    if pooled_result.by_document != baseline_result.by_document:
        failures.append("workers=2 shm results diverge from in-process")
    leaked = shm.leaked_segments()
    if leaked:
        failures.append(f"leaked /dev/shm segments after close: {leaked}")
    return failures


def run_smoke() -> int:
    """Scaled-down kernel regression gate for CI.

    Relaxed thresholds absorb runner noise; a kernel regression
    (agreement failure, re-lowering, loss of a speedup, a worker that
    pickles instead of attaching, or a leaked shm segment) exits
    nonzero and fails the build.
    """
    failures = []

    ngram_speedup, compiled, interpreted = measure_ngram(
        n_documents=6, repeats=1
    )
    print(f"[e6-smoke] n-gram: {ngram_speedup:.2f}x "
          f"({compiled * 1e3:.0f}ms vs {interpreted * 1e3:.0f}ms)")
    if ngram_speedup < 2.0:
        failures.append(
            f"n-gram kernel speedup {ngram_speedup:.2f}x < 2x"
        )

    engine_speedup, kernel_stats, _ = measure_engine(n_documents=8)
    print(f"[e6-smoke] engine: {engine_speedup:.2f}x, "
          f"artifacts compiled {kernel_stats.artifacts_compiled}, "
          f"certifications {kernel_stats.certifications}")
    if engine_speedup < 2.0:
        failures.append(
            f"engine kernel speedup {engine_speedup:.2f}x < 2x"
        )

    sweep = measure_sweep(n_documents=8, repeats=2)
    print(f"[e6-smoke] byte-sweep: {sweep['speedup_vs_v1']:.1f}x vs "
          f"v1, {sweep['speedup_vs_int']:.1f}x vs int, "
          f"{sweep['mb_per_second']:.1f} MB/s")
    if sweep["speedup_vs_v1"] < 3.0:
        failures.append(
            "byte-sweep speedup over v1 "
            f"{sweep['speedup_vs_v1']:.1f}x < 3x"
        )

    failures.extend(smoke_shm_workers())

    for failure in failures:
        print(f"[e6-smoke] FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("[e6-smoke] ok")
    return 1 if failures else 0


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="E6 compiled-kernel benchmark",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="run the scaled-down CI regression gate",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        return run_smoke()
    parser.error("run under pytest for the full benchmark, "
                 "or pass --smoke")
    return 2


if __name__ == "__main__":
    sys.exit(main())
