"""E1 — Wikipedia N-gram extraction (Introduction).

Paper claim: extracting N-grams from 1.53 GB of Wikipedia sentences,
"first split to sentences and then distribute" improves runtime by
2.1x for N=2 and 3.11x for N=3, over 5 cores.

Reproduction: a heavy-tailed synthetic prose corpus; the baseline
distributes whole documents over a 5-worker pool, the split plan
distributes sentence chunks over the same pool.  Substitutions (see
DESIGN.md): the corpus is synthetic and scaled to laptop size, and —
because this substrate exposes a single CPU — the 5 workers are a
discrete-event simulated pool fed with *measured* per-task costs
(:mod:`repro.runtime.simulation`).  The claim under test is the shape:
speedup > 1 from finer-grained scheduling, larger for the more
expensive N=3 extractor.
"""

import pytest

from benchmarks.conftest import report
from benchmarks.corpora import skewed_prose_corpus
from benchmarks.workloads import (
    TokenNgramExtractor,
    certify_sentence_local_extractor,
    sentence_splitter_fast,
)
from repro.runtime.simulation import simulate_corpus_speedup

WORKERS = 5
CORPUS = skewed_prose_corpus(
    n_documents=24, total_sentences=1200, seed=11, head_fraction=0.6
)


def test_certification_premise():
    """The framework certifies the sentence-split plan before timing."""
    assert certify_sentence_local_extractor()


def test_split_plan_is_correct_on_corpus_sample():
    from repro.runtime.executor import map_corpus_sequential

    extractor = TokenNgramExtractor(2, work=1)
    sentences = sentence_splitter_fast()
    sample = CORPUS[:8]
    whole = map_corpus_sequential(extractor, sample)
    split = map_corpus_sequential(extractor, sample, sentences)
    assert whole == split


@pytest.mark.benchmark(group="e1-ngrams")
def test_e1_bigrams(benchmark):
    extractor = TokenNgramExtractor(2, work=60)
    result = benchmark.pedantic(
        lambda: simulate_corpus_speedup(
            extractor, CORPUS, sentence_splitter_fast(), workers=WORKERS,
            repeats=2,
        ),
        rounds=1, iterations=1,
    )
    report("E1 N=2", "2.10x (5 cores, 1.53 GB Wikipedia)",
           f"{result.speedup:.2f}x (5 simulated workers, synthetic)",
           metrics={
               "workload": "token bigrams, 24-document skewed prose",
               "speedup": result.speedup,
               "baseline_seconds": result.baseline_makespan,
               "split_seconds": result.split_makespan,
           })
    assert result.speedup > 1.3


@pytest.mark.benchmark(group="e1-ngrams")
def test_e1_trigrams(benchmark):
    extractor = TokenNgramExtractor(3, work=90)
    result = benchmark.pedantic(
        lambda: simulate_corpus_speedup(
            extractor, CORPUS, sentence_splitter_fast(), workers=WORKERS,
            repeats=2,
        ),
        rounds=1, iterations=1,
    )
    report("E1 N=3", "3.11x (5 cores, 1.53 GB Wikipedia)",
           f"{result.speedup:.2f}x (5 simulated workers, synthetic)",
           metrics={
               "workload": "token trigrams, 24-document skewed prose",
               "speedup": result.speedup,
               "baseline_seconds": result.baseline_makespan,
               "split_seconds": result.split_makespan,
           })
    assert result.speedup > 1.5
