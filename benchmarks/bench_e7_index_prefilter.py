"""E7 — Corpus index prefiltering: skip chunks that cannot match.

Not a paper experiment but the production moral of split-correctness:
once chunks are independent units of work, most of them can be
*rejected* without running any automaton.  PR 5's index subsystem
(:mod:`repro.index`) derives the literal material every matching chunk
must contain from the certified plan's matching NFA, and answers
"could this chunk match?" from a trigram posting index built once per
corpus — the Google Code Search recipe applied to split-correct
chunks.

Workload: a **selective-literal** extraction — delimiter-bounded
``qz``-runs, where only a configurable fraction of sentences contains
the rare ``qz`` literal — over a synthetic prose corpus.  Three
engines run the identical certified plan:

* **baseline** — no prefiltering (every chunk hits the automaton);
* **scan** — factor prefiltering without an index (per-chunk
  substring checks);
* **indexed** — a :class:`repro.index.CorpusIndex` built over the
  corpus (its build time is charged to the indexed side), candidate
  bitmasks computed once per plan.

Claims under test: >= 2x end-to-end speedup for the indexed engine
(index build included) on the selective workload, pruned-chunk counts
> 0 surfaced via ``EngineStats``, identical span results on all three
paths, and graceful fallback — a spanner with no extractable factors
runs unfiltered and still agrees.

``python -m benchmarks.bench_e7_index_prefilter --smoke`` runs a
scaled-down version with a relaxed (1.5x) threshold as a CI
regression gate.
"""

from __future__ import annotations

import random
import sys
import time
from typing import List

import pytest

from benchmarks.conftest import report
from repro.engine import Corpus, ExtractionEngine, Program
from repro.runtime import RegisteredSplitter
from repro.runtime.fast import FastSeparatorSplitter
from repro.spanners.regex_formulas import compile_regex_formula
from repro.spanners.vset_automaton import VSetAutomaton
from repro.splitters.builders import separator_splitter

ALPHABET = frozenset("abcdefgh qz.")

#: Delimiter-bounded ``qz``-runs: the E5/E6 a-run shape, pointed at a
#: rare literal so the workload is selective.
PATTERN = (".*(\\.| )y{qz+}(\\.| ).*|y{qz+}(\\.| ).*"
           "|.*(\\.| )y{qz+}|y{qz+}")


def qz_extractor() -> VSetAutomaton:
    return compile_regex_formula(PATTERN, ALPHABET)


def factorless_extractor() -> VSetAutomaton:
    """A spanner with no extractable factors: neither ``a`` nor ``b``
    is individually necessary, one character suffices, and the free
    ``.*`` context realizes every trigram — the fallback path the
    acceptance criteria require."""
    return compile_regex_formula(".*y{a+|b+}.*", ALPHABET)


def sentence_registry() -> List[RegisteredSplitter]:
    return [
        RegisteredSplitter(
            "sentences", separator_splitter(ALPHABET, "."),
            priority=1, executor=FastSeparatorSplitter("."),
        ),
    ]


def selective_corpus(
    n_documents: int,
    sentences_per_document: int,
    hit_fraction: float,
    seed: int,
) -> List[str]:
    """Prose where only ``hit_fraction`` of sentences contain ``qz``.

    Every document draws fresh sentences (no cross-document
    boilerplate), so chunk-cache dedup cannot mask the prefiltering
    effect being measured.
    """
    rng = random.Random(seed)
    letters = "abcdefgh"

    def token() -> str:
        return "".join(rng.choice(letters)
                       for _ in range(rng.randint(2, 7)))

    def sentence(with_hit: bool) -> str:
        words = [token() for _ in range(rng.randint(6, 12))]
        if with_hit:
            words[rng.randrange(len(words))] = \
                "q" + "z" * rng.randint(1, 3)
        return " ".join(words)

    documents = []
    for _ in range(n_documents):
        documents.append(". ".join(
            sentence(rng.random() < hit_fraction)
            for _ in range(sentences_per_document)
        ) + ".")
    return documents


# ----------------------------------------------------------------------
# Shared measurement
# ----------------------------------------------------------------------


def measure(n_documents: int, sentences_per_document: int = 12,
            hit_fraction: float = 0.05, seed: int = 37):
    """Run the three engines over one corpus; returns a result dict.

    Asserts (inside) that all three produce identical span results
    and that both filtered engines actually pruned chunks.
    """
    from repro.engine import PlanCache

    corpus = Corpus.from_texts(selective_corpus(
        n_documents, sentences_per_document, hit_fraction, seed=seed,
    ))
    specification = qz_extractor()
    program = Program(specification, name="qz-runs")

    # One shared plan cache: certification (and the certificate's
    # factor analysis) is the amortized certify-once cost every
    # engine replays — it stays outside the timed regions, exactly
    # like E5/E6 measure extraction rather than certification.
    plan_cache = PlanCache()
    baseline = ExtractionEngine(sentence_registry(), batch_size=16,
                                plan_cache=plan_cache)
    certified = baseline.certify(program)
    certified.factor_set()

    start = time.perf_counter()
    baseline_result = baseline.run(corpus, program)
    baseline_seconds = time.perf_counter() - start

    scan = ExtractionEngine(sentence_registry(), batch_size=16,
                            plan_cache=plan_cache, prefilter=True)
    start = time.perf_counter()
    scan_result = scan.run(corpus, program)
    scan_seconds = time.perf_counter() - start

    indexed = ExtractionEngine(sentence_registry(), batch_size=16,
                               plan_cache=plan_cache)
    start = time.perf_counter()
    index = indexed.build_index(corpus, program)
    build_seconds = time.perf_counter() - start
    indexed.attach_index(index)
    start = time.perf_counter()
    indexed_result = indexed.run(corpus, program)
    indexed_seconds = time.perf_counter() - start

    assert baseline_result.by_document == scan_result.by_document
    assert baseline_result.by_document == indexed_result.by_document
    scan_stats = scan.stats()
    indexed_stats = indexed.stats()
    assert scan_stats.chunks_pruned > 0
    assert indexed_stats.chunks_pruned > 0
    assert baseline.stats().chunks_pruned == 0
    # Pruning skips evaluation entirely — never the other counters.
    assert (indexed_stats.chunks_evaluated
            < baseline.stats().chunks_evaluated)

    return {
        "documents": n_documents,
        "chunks_total": indexed_stats.chunks_total,
        "chunks_pruned": indexed_stats.chunks_pruned,
        "prune_rate": indexed_stats.prune_rate,
        "tuples": baseline_result.total_tuples(),
        "baseline_seconds": baseline_seconds,
        "scan_seconds": scan_seconds,
        "index_build_seconds": build_seconds,
        "indexed_run_seconds": indexed_seconds,
        "scan_speedup": baseline_seconds / max(scan_seconds, 1e-9),
        "indexed_speedup": (baseline_seconds
                            / max(build_seconds + indexed_seconds, 1e-9)),
        "indexed_stats": indexed_stats,
    }


# ----------------------------------------------------------------------
# Benchmarks
# ----------------------------------------------------------------------


def test_premise_filter_is_sound_per_chunk():
    """admits() == False implies an empty result, chunk by chunk."""
    from repro.index import factors_of

    specification = qz_extractor()
    factors = factors_of(specification)
    assert factors is not None and factors.effective
    assert "qz" in factors.required
    splitter = FastSeparatorSplitter(".")
    for text in selective_corpus(6, 8, 0.3, seed=5):
        for chunk in splitter.chunks(text):
            if not factors.admits(chunk):
                assert specification.evaluate(chunk) == set()


def test_premise_factorless_spanner_falls_back():
    """No extractable factors: identical results, zero pruning."""
    from repro.index import factors_of

    specification = factorless_extractor()
    factors = factors_of(specification)
    assert factors is None or not factors.effective

    corpus = Corpus.from_texts(selective_corpus(4, 6, 0.2, seed=9))
    program = Program(specification, name="factorless")
    plain = ExtractionEngine(sentence_registry())
    filtered = ExtractionEngine(sentence_registry(), prefilter=True)
    filtered.attach_index(filtered.build_index(corpus, program))
    plain_result = plain.run(corpus, program)
    filtered_result = filtered.run(corpus, program)
    assert plain_result.by_document == filtered_result.by_document
    assert filtered.stats().chunks_pruned == 0


@pytest.mark.benchmark(group="e7-index")
def test_e7_index_prefilter_speedup(benchmark):
    result = benchmark.pedantic(
        lambda: measure(n_documents=24), rounds=1, iterations=1,
    )
    report(
        "E7 prefilter",
        "no paper claim (index subsystem)",
        f"indexed {result['indexed_speedup']:.2f}x / scan "
        f"{result['scan_speedup']:.2f}x vs unindexed engine, "
        f"{result['chunks_pruned']}/{result['chunks_total']} chunks "
        f"pruned (index built in {result['index_build_seconds']*1e3:.0f}ms)",
        metrics={
            "workload": ("selective qz-run extraction, 24 documents, "
                         "5% hit sentences"),
            "speedup": result["indexed_speedup"],
            "scan_speedup": result["scan_speedup"],
            "baseline_seconds": result["baseline_seconds"],
            "indexed_seconds": (result["index_build_seconds"]
                                + result["indexed_run_seconds"]),
        },
        stats=result["indexed_stats"],
    )
    # End-to-end (index build included) on the selective workload.
    assert result["indexed_speedup"] >= 2.0
    assert result["chunks_pruned"] > 0


# ----------------------------------------------------------------------
# CI smoke gate
# ----------------------------------------------------------------------


def run_smoke() -> int:
    """Scaled-down index regression gate for CI.

    A relaxed 1.5x threshold absorbs runner noise; losing the
    speedup, the pruning, or result agreement exits nonzero and
    fails the build (the agreement and fallback premises assert
    inside the helpers).
    """
    failures = []

    test_premise_factorless_spanner_falls_back()
    print("[e7-smoke] factorless fallback: identical results, 0 pruned")

    result = measure(n_documents=10, sentences_per_document=10)
    print(f"[e7-smoke] indexed {result['indexed_speedup']:.2f}x, "
          f"scan {result['scan_speedup']:.2f}x, "
          f"pruned {result['chunks_pruned']}/{result['chunks_total']}")
    if result["indexed_speedup"] < 1.5:
        failures.append(
            f"indexed speedup {result['indexed_speedup']:.2f}x < 1.5x"
        )
    if result["chunks_pruned"] <= 0:
        failures.append("no chunks pruned on the selective workload")

    for failure in failures:
        print(f"[e7-smoke] FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("[e7-smoke] ok")
    return 1 if failures else 0


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="E7 index-prefilter benchmark",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="run the scaled-down CI regression gate",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        return run_smoke()
    parser.error("run under pytest for the full benchmark, "
                 "or pass --smoke")
    return 2


if __name__ == "__main__":
    sys.exit(main())
