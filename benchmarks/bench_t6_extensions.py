"""T6 — Section 7 extensions: filters and annotated splitters.

Times Theorem 7.6 (split-correctness with the minimal regular filter)
and Theorems E.3/E.4 (annotated split-correctness, general vs the
highlander fast path) on the HTTP GET/POST routing scenario.
"""

import time

import pytest

from benchmarks.conftest import report
from repro.core.annotated import (
    AnnotatedSplitter,
    annotated_split_correct,
    annotated_split_correct_highlander,
)
from repro.core.filters import self_splittable_with_filter
from repro.spanners.algebra import restrict_to_language
from repro.spanners.determinism import determinize
from repro.spanners.regex_formulas import compile_regex_formula
from repro.splitters.builders import sentence_splitter

RC = frozenset("gp#ab")
TXT = frozenset("ab .")


def _annotated_scenario():
    get_records = compile_regex_formula(
        "(.*\\#)?x{g(g|p|a|b)*}((\\#).*)?", RC
    )
    post_records = compile_regex_formula(
        "(.*\\#)?x{p(g|p|a|b)*}((\\#).*)?", RC
    )
    annotated = AnnotatedSplitter({"GET": get_records,
                                   "POST": post_records})
    spanner = compile_regex_formula(
        "((.*\\#)?(g)(g|p|a|b)*y{a}(g|p|a|b)*((\\#).*)?)"
        "|((.*\\#)?(p)(g|p|a|b)*y{b}(g|p|a|b)*((\\#).*)?)",
        RC,
    )
    mapping = {
        "GET": compile_regex_formula("(g)(g|p|a|b)*y{a}(g|p|a|b)*", RC),
        "POST": compile_regex_formula("(p)(g|p|a|b)*y{b}(g|p|a|b)*", RC),
    }
    return annotated, spanner, mapping


@pytest.mark.benchmark(group="t6-extensions")
def test_t6_filters(benchmark):
    from repro.automata.regex import regex_to_nfa

    extractor = compile_regex_formula(
        ".*(\\.| )y{aa}(\\.| ).*|y{aa}(\\.| ).*|.*(\\.| )y{aa}|y{aa}", TXT
    )
    well_formed = regex_to_nfa("(a|b| )*\\.", TXT)
    checked = restrict_to_language(extractor, well_formed)
    sentences = sentence_splitter(TXT)

    def run():
        return self_splittable_with_filter(checked, sentences)

    answer = benchmark.pedantic(run, rounds=1, iterations=1)
    report("T6 filter", "Thm 7.6: minimal filter L_P enables sentence split",
           f"{answer}")
    assert answer


@pytest.mark.benchmark(group="t6-extensions")
def test_t6_annotated_general_vs_highlander(benchmark):
    annotated, spanner, mapping = _annotated_scenario()

    def run():
        start = time.perf_counter()
        general = annotated_split_correct(spanner, mapping, annotated)
        t_general = time.perf_counter() - start
        det_annotated = AnnotatedSplitter(
            {key: determinize(s) for key, s in annotated.keyed.items()}
        )
        det_spanner = determinize(spanner)
        det_mapping = {key: determinize(s) for key, s in mapping.items()}
        start = time.perf_counter()
        fast = annotated_split_correct_highlander(
            det_spanner, det_mapping, det_annotated, check=False
        )
        t_fast = time.perf_counter() - start
        return general, t_general, fast, t_fast

    general, t_general, fast, t_fast = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    report("T6 annotated",
           "Thms E.3/E.4: GET/POST routing split-correct; highlander "
           "fast path agrees",
           f"general={general} ({t_general*1e3:.0f}ms), "
           f"highlander={fast} ({t_fast*1e3:.0f}ms)")
    assert general and fast
