"""E3 — Reuters financial-event extraction on Spark (Introduction).

Paper claim: extracting financial transactions between organizations
from ~9,000 Reuters articles on a 5-node Spark cluster, breaking each
article into sentences reduced running time by 1.99x — with the *same*
parallelism before and after; the gain comes from giving the scheduler
more, smaller tasks.

Reproduction: article-shaped corpus with in-sentence ``Org pays Org``
events; whole-article tasks vs sentence tasks on a 5-worker simulated
pool (measured costs).  The split plan's output is checked equal to
the baseline's before timing.
"""

import pytest

from benchmarks.conftest import report
from benchmarks.corpora import reuters_like_corpus
from benchmarks.workloads import EventExtractor, sentence_splitter_fast
from repro.runtime.executor import map_corpus_sequential
from repro.runtime.simulation import simulate_corpus_speedup

WORKERS = 5


def _newswire_corpus():
    # Newswire mixes many briefs with a few long feature pieces; long
    # pieces picked up late are the coarse plan's stragglers.
    briefs = reuters_like_corpus(n_articles=140, mean_sentences=8, seed=37)
    features = reuters_like_corpus(n_articles=4, mean_sentences=250,
                                   seed=39)
    return briefs[:120] + features + briefs[120:]


CORPUS = _newswire_corpus()


def test_split_preserves_output():
    extractor = EventExtractor(work=1)
    sentences = sentence_splitter_fast()
    sample = CORPUS[:20]
    whole = map_corpus_sequential(extractor, sample)
    split = map_corpus_sequential(extractor, sample, sentences)
    assert whole == split
    assert any(whole)  # events are actually present


@pytest.mark.benchmark(group="e3-events")
def test_e3_event_extraction(benchmark):
    extractor = EventExtractor(work=60)
    result = benchmark.pedantic(
        lambda: simulate_corpus_speedup(
            extractor, CORPUS, sentence_splitter_fast(), workers=WORKERS,
            repeats=2, chunksize=8,
        ),
        rounds=1, iterations=1,
    )
    report("E3", "1.99x (5-node Spark, ~9,000 Reuters articles)",
           f"{result.speedup:.2f}x (5 simulated workers, "
           f"{result.baseline_tasks} -> {result.split_tasks} tasks)",
           metrics={
               "workload": "Reuters-shaped event extraction",
               "speedup": result.speedup,
               "baseline_seconds": result.baseline_makespan,
               "split_seconds": result.split_makespan,
               "baseline_tasks": result.baseline_tasks,
               "split_tasks": result.split_tasks,
           })
    assert result.speedup > 1.2
