"""T2 — the split-correctness complexity landscape (Thms 5.1 / 5.7).

PSPACE-complete in general (the Theorem 5.1 reduction family from DFA
union universality), polynomial for dfVSA with disjoint splitters
(Theorem 5.7).  The benchmark times both procedures on their natural
instance families and regenerates the tractability frontier: the
general procedure's cost grows with the number of union branches,
while the dfVSA discrepancy search scales smoothly in extractor size.
"""

import time

import pytest

from benchmarks.conftest import report
from repro.automata.dfa import random_dfa
from repro.reductions import split_correctness_instance
from repro.core.split_correctness import (
    split_correct_dfvsa,
    split_correct_general,
)
from repro.spanners.determinism import determinize
from repro.spanners.regex_formulas import compile_regex_formula
from repro.splitters.builders import token_splitter

SIGMA = ["b", "c"]
TXT = frozenset("ab ")


@pytest.mark.benchmark(group="t2-split-correctness")
def test_t2_general_growth(benchmark):
    def sweep():
        rows = []
        for branches in (1, 2, 3):
            dfas = [random_dfa(SIGMA, 3, seed=17 + k)
                    for k in range(branches)]
            p, p_s, s = split_correctness_instance(dfas, SIGMA)
            start = time.perf_counter()
            split_correct_general(p, p_s, s)
            rows.append((branches, time.perf_counter() - start))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    text = ", ".join(f"n={n}: {t*1e3:.0f}ms" for n, t in rows)
    report("T2a", "split-correctness PSPACE-complete (Thm 5.1 family)",
           text)
    assert rows[-1][1] > 0


@pytest.mark.benchmark(group="t2-split-correctness")
def test_t2_dfvsa_polynomial(benchmark):
    tokens = determinize(token_splitter(TXT))

    def extractor(run_length: int):
        runs = "a" * run_length
        return determinize(compile_regex_formula(
            f".*( )y{{{runs}}}( ).*|y{{{runs}}}( ).*"
            f"|.*( )y{{{runs}}}|y{{{runs}}}",
            TXT,
        ))

    def sweep():
        rows = []
        for size in (1, 2, 4, 8):
            p = extractor(size)
            start = time.perf_counter()
            split_correct_dfvsa(p, p, tokens, check=False)
            rows.append((size, time.perf_counter() - start))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    text = ", ".join(f"|P|={s}: {t*1e3:.1f}ms" for s, t in rows)
    report("T2b", "PTIME for dfVSA + disjoint splitter (Thm 5.7)", text)
    assert rows[-1][1] < 500 * max(rows[0][1], 1e-4)
