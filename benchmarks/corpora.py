"""Synthetic corpus generators for the benchmark harness.

The paper's Introduction experiments ran on proprietary/offline-
unavailable corpora (a 1.53 GB Wikipedia sentence dump, 279 MB of
PubMed sentences, ~9,000 Reuters articles, ~570,000 Amazon Fine Food
reviews).  These generators produce deterministic synthetic corpora
with the same *shape*: sentence/token structure, heavy-tailed document
lengths (the scheduling-granularity effect the paper credits for its
Spark speedups depends on skew), and configurable densities of the
entities the extractors look for.

All generators are deterministic in ``seed``.
"""

from __future__ import annotations

import random
from typing import List, Sequence

LOWER = "abcdefgh"

ORGS = ["Acme", "Bolt", "Core", "Dyna", "Echo", "Flux", "Gem", "Hive"]
NEGATIVE_ADJECTIVES = ["bad", "awful", "terrible"]
NEUTRAL_ADJECTIVES = ["fine", "fresh", "plain"]


def _token(rng: random.Random, min_len: int = 2, max_len: int = 7) -> str:
    length = rng.randint(min_len, max_len)
    return "".join(rng.choice(LOWER) for _ in range(length))


def _sentence(rng: random.Random, min_tokens: int = 5,
              max_tokens: int = 12) -> str:
    count = rng.randint(min_tokens, max_tokens)
    return " ".join(_token(rng) for _ in range(count)) + "."


def _heavy_tailed_length(rng: random.Random, mean: int) -> int:
    """A skewed sentence count: most documents short, a few very long."""
    if rng.random() < 0.1:
        return max(1, int(rng.expovariate(1.0 / (mean * 5))))
    return max(1, int(rng.expovariate(1.0 / mean)))


def prose_corpus(
    n_documents: int,
    mean_sentences: int,
    seed: int,
    heavy_tail: bool = True,
) -> List[str]:
    """Generic prose: documents of '.'-terminated, space-joined
    sentences (the Wikipedia/PubMed stand-in)."""
    rng = random.Random(seed)
    documents = []
    for _ in range(n_documents):
        count = (_heavy_tailed_length(rng, mean_sentences)
                 if heavy_tail else mean_sentences)
        documents.append(" ".join(_sentence(rng) for _ in range(count)))
    return documents


def skewed_prose_corpus(
    n_documents: int,
    total_sentences: int,
    seed: int,
    head_fraction: float = 0.5,
    head_documents: int = 1,
) -> List[str]:
    """Prose with an explicit heavy head: a few documents carry
    ``head_fraction`` of all sentences.

    This is the document-length skew that makes whole-document
    distribution stall on stragglers — the regime in which the paper's
    split-then-distribute plans win.
    """
    rng = random.Random(seed)
    head_total = int(total_sentences * head_fraction)
    tail_total = total_sentences - head_total
    tail_documents = max(1, n_documents - head_documents)
    counts = []
    for i in range(head_documents):
        counts.append(max(1, head_total // head_documents))
    for i in range(tail_documents):
        counts.append(max(1, tail_total // tail_documents))
    documents = []
    for count in counts:
        documents.append(" ".join(_sentence(rng) for _ in range(count)))
    rng.shuffle(documents)
    return documents


def reuters_like_corpus(
    n_articles: int,
    mean_sentences: int,
    seed: int,
    event_density: float = 0.25,
) -> List[str]:
    """News articles with financial-transaction events.

    A fraction of sentences contains an ``Org pays Org`` event, always
    within a single sentence (the paper's extractor operates on
    sentences).
    """
    rng = random.Random(seed)
    articles = []
    for _ in range(n_articles):
        count = _heavy_tailed_length(rng, mean_sentences)
        sentences = []
        for _ in range(count):
            if rng.random() < event_density:
                src, dst = rng.sample(ORGS, 2)
                filler = _token(rng)
                sentences.append(
                    f"{src} pays {dst} for {filler}."
                )
            else:
                sentences.append(_sentence(rng))
        articles.append(" ".join(sentences))
    return articles


def review_corpus(
    n_reviews: int,
    mean_sentences: int,
    seed: int,
    negative_density: float = 0.3,
) -> List[str]:
    """Product reviews with sentiment sentences (the Amazon stand-in)."""
    rng = random.Random(seed)
    reviews = []
    for _ in range(n_reviews):
        count = _heavy_tailed_length(rng, mean_sentences)
        sentences = []
        for _ in range(count):
            roll = rng.random()
            if roll < negative_density:
                target = _token(rng, 3, 8)
                adjective = rng.choice(NEGATIVE_ADJECTIVES)
                sentences.append(f"the {target} is {adjective}.")
            elif roll < negative_density + 0.2:
                target = _token(rng, 3, 8)
                adjective = rng.choice(NEUTRAL_ADJECTIVES)
                sentences.append(f"the {target} is {adjective}.")
            else:
                sentences.append(_sentence(rng))
        reviews.append(" ".join(sentences))
    return reviews


def boilerplate_corpus(
    n_documents: int,
    sentences_per_document: int,
    distinct_sentences: int,
    seed: int,
    token_pool_size: int = 24,
) -> List[str]:
    """Documents assembled from a small pool of repeated sentences.

    Models the chunk-level redundancy of real corpora (boilerplate,
    quoted passages, shared records): every document draws its
    sentences from the same ``distinct_sentences``-sized pool, whose
    sentences in turn draw from a ``token_pool_size``-sized token pool
    (about a third of them the ``a``-runs the E-series extractors look
    for).  The engine benchmark (E5) measures how much of that
    redundancy the chunk cache recovers.
    """
    rng = random.Random(seed)
    tokens = [
        "a" * rng.randint(1, 4) if rng.random() < 0.35 else _token(rng)
        for _ in range(token_pool_size)
    ]
    pool = [
        " ".join(rng.choice(tokens)
                 for _ in range(rng.randint(5, 12))) + "."
        for _ in range(distinct_sentences)
    ]
    return [
        " ".join(rng.choice(pool) for _ in range(sentences_per_document))
        for _ in range(n_documents)
    ]


def corpus_stats(documents: Sequence[str]) -> dict:
    lengths = [len(d) for d in documents]
    return {
        "documents": len(documents),
        "total_chars": sum(lengths),
        "max_chars": max(lengths) if lengths else 0,
        "mean_chars": (sum(lengths) / len(lengths)) if lengths else 0.0,
    }
