"""Shared helpers for the benchmark harness.

Every benchmark prints a paper-vs-measured row so that running
``pytest benchmarks/ --benchmark-only -s`` regenerates the full
comparison table recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import sys
import time
from typing import Callable

import pytest


def timed(function: Callable, repeats: int = 1) -> float:
    """Best-of-``repeats`` wall-clock seconds for ``function()``."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        function()
        best = min(best, time.perf_counter() - start)
    return best


def report(experiment: str, paper_claim: str, measured: str) -> None:
    """Emit one comparison row (captured by ``-s`` runs)."""
    print(f"\n[{experiment}] paper: {paper_claim} | measured: {measured}",
          file=sys.stderr)


@pytest.fixture
def reporter():
    return report
