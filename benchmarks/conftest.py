"""Shared helpers for the benchmark harness.

Every benchmark prints a paper-vs-measured row so that running
``pytest benchmarks/ --benchmark-only -s`` regenerates the full
comparison table recorded in EXPERIMENTS.md.

Each :func:`report` call also persists its row — plus any structured
``metrics`` the benchmark passes (workload shape, wall-clock seconds,
speedups) — into ``benchmarks/results/BENCH_<name>.json``, one file
per experiment family (``BENCH_E6.json``, ``BENCH_T1.json``, ...), so
the performance trajectory is tracked as data across PRs instead of
living only in commit messages.
"""

from __future__ import annotations

import json
import re
import sys
import time
from pathlib import Path
from typing import Callable, Optional

import pytest

#: Where the machine-readable benchmark rows land (committed with the
#: repo so trajectories diff across PRs).
RESULTS_DIR = Path(__file__).resolve().parent / "results"


def timed(function: Callable, repeats: int = 1) -> float:
    """Best-of-``repeats`` wall-clock seconds for ``function()``."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        function()
        best = min(best, time.perf_counter() - start)
    return best


def _bench_name(experiment: str) -> str:
    """The experiment family of a report label: ``"E6 n-gram"`` ->
    ``"E6"`` (the ``<name>`` of its ``BENCH_<name>.json``)."""
    head = experiment.split()[0] if experiment.split() else "MISC"
    slug = re.sub(r"[^A-Za-z0-9_.-]+", "", head)
    return slug.upper() or "MISC"


def write_bench_json(name: str, experiment: str, entry: dict) -> Path:
    """Merge one row into ``BENCH_<name>.json`` (keyed by label)."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"BENCH_{name}.json"
    data = {"benchmark": name, "entries": {}}
    if path.exists():
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            pass
    data.setdefault("entries", {})[experiment] = entry
    path.write_text(
        json.dumps(data, indent=2, sort_keys=True, ensure_ascii=False)
        + "\n",
        encoding="utf-8",
    )
    return path


def report(
    experiment: str,
    paper_claim: str,
    measured: str,
    metrics: Optional[dict] = None,
    stats=None,
    tracer=None,
) -> None:
    """Emit one comparison row (captured by ``-s`` runs) and persist
    it (with optional structured ``metrics``) as JSON.

    ``stats`` takes an :class:`repro.engine.stats.EngineStats` (or an
    object with ``snapshot()``) and lands its full snapshot under
    ``engine_stats``, so every e-series benchmark records the same
    counter vocabulary; ``tracer`` takes an enabled
    :class:`repro.obs.trace.Tracer` and lands its per-phase durations
    under ``trace_phases``.
    """
    print(f"\n[{experiment}] paper: {paper_claim} | measured: {measured}",
          file=sys.stderr)
    entry = {"paper_claim": paper_claim, "measured": measured}
    if metrics:
        entry.update(metrics)
    if stats is not None:
        try:
            entry["engine_stats"] = stats.snapshot()
        except (AttributeError, TypeError):
            pass
    if tracer is not None and getattr(tracer, "enabled", False):
        entry["trace_phases"] = tracer.phase_durations()
        entry["trace_spans"] = len(tracer)
    try:
        write_bench_json(_bench_name(experiment), experiment, entry)
    except (OSError, TypeError, ValueError):
        pass  # reporting must never fail a benchmark run


@pytest.fixture
def reporter():
    return report
