"""E2 — PubMed N-gram extraction (Introduction).

Paper claim: the same split-then-distribute method on 279 MB of PubMed
sentences gave a 1.9x speedup.

Reproduction: abstract-shaped corpus (shorter documents, milder skew
than the Wikipedia stand-in), bigram extraction, 5 simulated workers
fed with measured task costs.  Expected shape: speedup > 1 but below
the heavily skewed E1 trigram number.
"""

import pytest

from benchmarks.conftest import report
from benchmarks.corpora import skewed_prose_corpus
from benchmarks.workloads import TokenNgramExtractor, sentence_splitter_fast
from repro.runtime.simulation import simulate_corpus_speedup

WORKERS = 5
# Abstract-shaped: more, shorter documents; a moderate head.
CORPUS = skewed_prose_corpus(
    n_documents=60, total_sentences=1200, seed=23,
    head_fraction=0.4, head_documents=2,
)


@pytest.mark.benchmark(group="e2-pubmed")
def test_e2_pubmed_bigrams(benchmark):
    extractor = TokenNgramExtractor(2, work=60)
    result = benchmark.pedantic(
        lambda: simulate_corpus_speedup(
            extractor, CORPUS, sentence_splitter_fast(), workers=WORKERS,
            repeats=2, chunksize=8,
        ),
        rounds=1, iterations=1,
    )
    report("E2", "1.9x (5 cores, 279 MB PubMed)",
           f"{result.speedup:.2f}x (5 simulated workers, synthetic)",
           metrics={
               "workload": "PubMed-shaped n-gram extraction",
               "speedup": result.speedup,
               "baseline_seconds": result.baseline_makespan,
               "split_seconds": result.split_makespan,
           })
    assert result.speedup > 1.2
