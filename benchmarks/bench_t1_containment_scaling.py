"""T1 — the containment complexity landscape (Theorems 4.1-4.3).

The paper proves spanner containment PSPACE-complete in general
(Thm 4.1), PSPACE-hard already for weakly deterministic functional
VSet-automata (Thm 4.2 — refuting the coNP claim of Maturana et al.),
and NL (here: polynomial product reachability) for dfVSA (Thm 4.3).

The benchmark regenerates the landscape empirically: runtime of the
general procedure on the Theorem 4.2 hardness family grows steeply
with the number of variables (the subset construction pays for the
variable-order nondeterminism), while dfVSA containment on
determinized instances of fixed variable count scales smoothly with
state count.
"""

import time

import pytest

from benchmarks.conftest import report
from repro.automata.dfa import random_dfa
from repro.reductions import weak_determinism_containment_instance
from repro.spanners.containment import spanner_contains
from repro.spanners.determinism import determinize, dfvsa_contains
from repro.spanners.regex_formulas import compile_regex_formula

SIGMA = ["b", "c"]


@pytest.mark.benchmark(group="t1-containment")
def test_t1_weakly_deterministic_growth(benchmark):
    """General containment runtime on the Thm 4.2 family by #variables."""

    def sweep():
        rows = []
        for n_vars in (1, 2, 3):
            dfas = [random_dfa(SIGMA, 3, seed=5 + k) for k in range(n_vars)]
            a, a_prime = weak_determinism_containment_instance(dfas, SIGMA)
            start = time.perf_counter()
            spanner_contains(a, a_prime)
            rows.append((n_vars, time.perf_counter() - start))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    text = ", ".join(f"n={n}: {t*1e3:.0f}ms" for n, t in rows)
    report("T1a", "weakly-det. containment PSPACE-hard (blow-up in n)",
           text)
    # The last instance must be strictly costlier than the first.
    assert rows[-1][1] > rows[0][1]


@pytest.mark.benchmark(group="t1-containment")
def test_t1_dfvsa_polynomial(benchmark):
    """dfVSA containment stays cheap as the pattern grows (Thm 4.3)."""

    def sweep():
        rows = []
        for size in (2, 4, 8, 16):
            pattern = "b" * size
            left = determinize(
                compile_regex_formula(f".*x{{{pattern}}}.*", SIGMA)
            )
            right = determinize(
                compile_regex_formula(".*x{b(b|c)*}.*|.*x{b}.*", SIGMA)
            )
            start = time.perf_counter()
            dfvsa_contains(left, right, check=False)
            rows.append((size, time.perf_counter() - start))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    text = ", ".join(f"|P|={s}: {t*1e3:.1f}ms" for s, t in rows)
    report("T1b", "dfVSA containment in NL (smooth polynomial scaling)",
           text)
    # Polynomial, not exponential: 8x the pattern costs far less than
    # a PSPACE blow-up would.
    assert rows[-1][1] < 200 * max(rows[0][1], 1e-4)
